//! Algorithm HR — hybrid reservoir sampling (§4.2, Fig. 7 of the paper).
//!
//! Like Algorithm HB, the sampler keeps an exact compact histogram while the
//! footprint permits (phase 1). When the footprint reaches the bound it
//! switches to reservoir mode (phase 2): the next element selected by the
//! skip function triggers `purgeReservoir(S, n_F)` — materializing a simple
//! random subsample of everything seen so far — followed by expansion and
//! the standard replace-a-victim step.
//!
//! HR needs **no a priori knowledge of the partition size** and always
//! delivers either the exact histogram or a reservoir sample of exactly
//! `n_F` elements, which is why its sample sizes are larger and more stable
//! than HB's (Figs. 15–16 of the paper) at the cost of costlier merges.

use crate::footprint::FootprintPolicy;
use crate::histogram::CompactHistogram;
use crate::invariant::invariant;
use crate::lineage::{push_capped, LineageEvent, PurgeKind};
use crate::purge::purge_reservoir;
use crate::sample::{Sample, SampleKind};
use crate::sampler::{flush_observe_segment, Sampler};
use crate::stats::SamplerStats;
use crate::value::SampleValue;
use rand::Rng;
use swh_obs::journal::{record, EventKind};
use swh_obs::trace::{next_span_id, Op, SpanId};
use swh_obs::{profile, Stopwatch};
use swh_rand::checked::{as_index, index_u64};
use swh_rand::skip::ReservoirSkip;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Exact,
    Reservoir,
}

impl Phase {
    /// Tag used in profiler scope paths (`observe/hr/<tag>/...`).
    fn tag(self) -> &'static str {
        match self {
            Phase::Exact => "exact",
            Phase::Reservoir => "reservoir",
        }
    }
}

/// Streaming Algorithm HR sampler.
///
/// ```
/// use swh_core::{FootprintPolicy, HybridReservoir, SampleKind, Sampler};
/// use swh_rand::seeded_rng;
///
/// let mut rng = seeded_rng(1);
/// let policy = FootprintPolicy::with_value_budget(512);
/// // No a priori size needed; the sample is pinned at n_F once sampling.
/// let sample = HybridReservoir::new(policy).sample_batch(0..100_000u64, &mut rng);
/// assert_eq!(sample.kind(), SampleKind::Reservoir);
/// assert_eq!(sample.size(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct HybridReservoir<T: SampleValue> {
    policy: FootprintPolicy,
    phase: Phase,
    /// Compact sample (phase 1, and phase 2 before the lazy purge).
    hist: CompactHistogram<T>,
    /// Expanded bag (phase 2 after the first insertion).
    bag: Vec<T>,
    expanded: bool,
    observed: u64,
    next_include: u64,
    skip_gen: Option<ReservoirSkip>,
    stats: SamplerStats,
    /// Lineage accumulated during sampling, attached at finalize. Carries
    /// the prior's history when resumed.
    lineage: Vec<LineageEvent>,
    /// Journal span covering this sampler's life (clones share the ID).
    span: SpanId,
    /// `false` when resumed from a prior sample: the stats then cover
    /// only the streamed tail, so the run is excluded from the
    /// uniformity audit (its merge is audited at the merge sites).
    audit_fresh: bool,
}

impl<T: SampleValue> HybridReservoir<T> {
    /// Create an HR sampler under the given footprint bound.
    pub fn new(policy: FootprintPolicy) -> Self {
        let span = next_span_id();
        record(EventKind::SpanStart, span.raw(), 0, Op::Ingest.code(), 0);
        // Reserve the phase-1 histogram up front: distinct values never
        // exceed the slot bound `n_F`, so the hot loop never rehashes.
        let hist = CompactHistogram::with_slot_capacity(policy.n_f());
        Self {
            policy,
            phase: Phase::Exact,
            hist,
            bag: Vec::new(),
            expanded: false,
            observed: 0,
            next_include: 0,
            skip_gen: None,
            stats: SamplerStats::default(),
            lineage: Vec::new(),
            span,
            audit_fresh: true,
        }
    }

    /// Resume sampling from a previously finalized sample, as `HRMerge`
    /// (Fig. 8, lines 1–4) requires.
    ///
    /// # Panics
    /// Panics if `prior` is a Bernoulli or concise sample: HR state only
    /// represents exhaustive or reservoir provenance. (`HRMerge` handles a
    /// Bernoulli input by treating it as a conditional simple random
    /// sample — see [`mod@crate::merge`].)
    pub fn resume<R: Rng + ?Sized>(prior: Sample<T>, rng: &mut R) -> Self {
        let policy = prior.policy();
        let parent = prior.parent_size();
        let kind = prior.kind();
        let prior_lineage = prior.lineage().to_vec();
        let hist = prior.into_histogram();
        let mut resumed = match kind {
            SampleKind::Exhaustive => {
                let mut s = Self::new(policy);
                s.hist = hist;
                s.observed = parent;
                s
            }
            SampleKind::Reservoir => {
                let k = hist.total();
                let mut s = Self::new(policy);
                s.phase = Phase::Reservoir;
                // The prior is already a materialized reservoir sample:
                // expand it now so insertions need no purge.
                s.bag = hist.into_bag();
                s.expanded = true;
                s.observed = parent.max(k);
                if k == 0 {
                    // Degenerate capacity-0 reservoir (a merge with an
                    // empty sample of a non-empty parent): it stays empty
                    // forever, so no insertion may ever fire.
                    s.next_include = u64::MAX;
                    s.skip_gen = None;
                } else {
                    let mut gen = ReservoirSkip::new(k, rng);
                    s.next_include = s.observed + gen.skip(s.observed, rng);
                    s.skip_gen = Some(gen);
                }
                s
            }
            SampleKind::Bernoulli { .. } | SampleKind::Concise { .. } => {
                panic!("HybridReservoir::resume requires an exhaustive or reservoir prior")
            }
        };
        resumed.lineage = prior_lineage;
        resumed.audit_fresh = false;
        resumed
    }

    /// Current phase (1 or 2), matching the paper's numbering.
    pub fn phase(&self) -> u8 {
        match self.phase {
            Phase::Exact => 1,
            Phase::Reservoir => 2,
        }
    }

    /// Current footprint in value slots.
    ///
    /// Invariant: never exceeds `n_F` — in phase 2 before the lazy purge the
    /// histogram footprint sits exactly at the bound.
    pub fn current_slots(&self) -> u64 {
        if self.expanded {
            self.bag.len() as u64
        } else {
            self.hist.slots()
        }
    }

    /// Human-readable name of the current phase.
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Exact => "exact histogram",
            Phase::Reservoir => "reservoir",
        }
    }

    /// Record a phase transition in the lineage and the journal (HR's own
    /// numbering: 1 = exact, 2 = reservoir; no rate, so `q` = 0).
    fn note_transition(&mut self, from: u8, to: u8) {
        let footprint_slots = self.current_slots();
        push_capped(
            &mut self.lineage,
            LineageEvent::PhaseTransition {
                from,
                to,
                q: 0.0,
                footprint_slots,
            },
        );
        record(
            EventKind::PhaseTransition,
            self.span.raw(),
            0,
            ((from as u64) << 8) | to as u64,
            self.current_slots(),
        );
    }

    /// Fig. 7 lines 3–5: the footprint hit the bound — switch to reservoir
    /// mode. The purge happens lazily at the first skip-selected insertion.
    fn leave_phase1<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // The histogram was reserved for n_F slots at construction and
        // distinct ≤ slots = n_F here, so it never outgrew the reservation.
        invariant!(
            index_u64(self.hist.distinct()) <= self.policy.n_f(),
            "phase-1 histogram outgrew its n_F reservation: {} distinct > {}",
            self.hist.distinct(),
            self.policy.n_f()
        );
        self.stats.enter_phase2(self.observed);
        self.phase = Phase::Reservoir;
        self.note_transition(1, 2);
        let mut gen = ReservoirSkip::new(self.policy.n_f(), rng);
        self.next_include = self.observed + gen.skip(self.observed, rng);
        self.skip_gen = Some(gen);
    }

    /// Materialize the pending lazy purge: a simple random subsample of
    /// size `n_F` over everything seen so far, expanded to bag form for
    /// in-place victim replacement.
    fn materialize_reservoir<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        debug_assert!(!self.expanded);
        let start = Stopwatch::start();
        purge_reservoir(&mut self.hist, self.policy.n_f(), rng);
        self.stats.record_purge(start.elapsed_ns());
        self.note_purge(self.hist.total());
        self.bag = std::mem::take(&mut self.hist).into_bag();
        self.expanded = true;
        invariant!(
            index_u64(self.bag.len()) <= self.policy.n_f(),
            "footprint {} exceeds n_F = {} after the lazy purge",
            self.bag.len(),
            self.policy.n_f()
        );
    }

    /// Record a purge in the lineage and the journal.
    fn note_purge(&mut self, survivors: u64) {
        push_capped(
            &mut self.lineage,
            LineageEvent::Purge {
                kind: PurgeKind::Reservoir,
                survivors,
            },
        );
        record(
            EventKind::Purge,
            self.span.raw(),
            0,
            PurgeKind::Reservoir.code() as u64,
            survivors,
        );
    }
}

impl<T: SampleValue> std::fmt::Display for HybridReservoir<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HR[phase {} ({}), {}/{} slots, {} observed]",
            self.phase(),
            self.phase_name(),
            self.current_slots(),
            self.policy.n_f(),
            self.observed,
        )
    }
}

impl<T: SampleValue> Sampler<T> for HybridReservoir<T> {
    fn observe<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) {
        self.observed += 1;
        match self.phase {
            Phase::Exact => {
                self.hist.insert_one(value);
                self.stats.include();
                if self.policy.compact_overflows(self.hist.slots()) {
                    self.leave_phase1(rng);
                }
            }
            Phase::Reservoir => {
                if self.observed == self.next_include {
                    if !self.expanded {
                        self.materialize_reservoir(rng);
                    }
                    let victim = rng.random_range(0..self.bag.len());
                    self.bag[victim] = value;
                    self.stats.include();
                    let gen = self
                        .skip_gen
                        .as_mut()
                        // swh-analyze: allow(panic) -- phase-2 insertions only fire when next_include is finite, which implies a generator (degenerate reservoirs pin next_include to u64::MAX)
                        .expect("phase 2 has a skip generator");
                    self.next_include = self.observed + gen.skip(self.observed, rng);
                } else {
                    self.stats.reject();
                }
            }
        }
        self.stats.record_footprint(self.current_slots());
    }

    /// Phase-aware bulk path. Byte-identical to the element-wise loop for
    /// any chunking of the stream: phase 1 inserts until the footprint
    /// trips (splitting the slice at a mid-batch transition), phase 2
    /// advances the skip counter across whole rejected groups and touches
    /// the RNG only at inclusions.
    fn observe_batch<R: Rng + ?Sized>(&mut self, values: &[T], rng: &mut R) {
        let profiled = profile::enabled();
        let mut seg_sw = Stopwatch::start();
        let mut seg_phase = self.phase;
        let mut seg_obs = self.observed;
        let mut rest = values;
        while !rest.is_empty() {
            if profiled && self.phase != seg_phase {
                flush_observe_segment("hr", seg_phase.tag(), self.observed - seg_obs, &seg_sw);
                seg_sw = Stopwatch::start();
                seg_phase = self.phase;
                seg_obs = self.observed;
            }
            match self.phase {
                Phase::Exact => {
                    // Phase-1 slots are monotone non-decreasing (and the
                    // switch purges nothing), so recording the footprint at
                    // the group boundary reproduces the per-element
                    // high-water mark exactly.
                    let mut used = 0usize;
                    for v in rest {
                        used += 1;
                        self.observed += 1;
                        self.hist.insert_one(v.clone());
                        self.stats.include();
                        if self.policy.compact_overflows(self.hist.slots()) {
                            self.leave_phase1(rng);
                            break;
                        }
                    }
                    self.stats.record_footprint(self.current_slots());
                    rest = &rest[used..];
                }
                Phase::Reservoir => {
                    let remaining = index_u64(rest.len());
                    // Between calls `next_include > observed` (pinned to
                    // u64::MAX by degenerate resumed reservoirs), so the
                    // subtraction never underflows and the whole-group
                    // rejection test never overflows.
                    if self.next_include - self.observed > remaining {
                        self.observed += remaining;
                        self.stats.rejections += remaining;
                        self.stats.record_footprint(self.current_slots());
                        break;
                    }
                    let gap = self.next_include - self.observed - 1;
                    let idx = as_index(gap);
                    self.observed = self.next_include;
                    self.stats.rejections += gap;
                    if !self.expanded {
                        self.materialize_reservoir(rng);
                    }
                    let victim = rng.random_range(0..self.bag.len());
                    self.bag[victim] = rest[idx].clone();
                    self.stats.include();
                    let gen = self
                        .skip_gen
                        .as_mut()
                        // swh-analyze: allow(panic) -- as in observe: a finite next_include implies a generator (degenerate reservoirs pin next_include to u64::MAX)
                        .expect("phase 2 has a skip generator");
                    self.next_include = self.observed + gen.skip(self.observed, rng);
                    self.stats.record_footprint(self.current_slots());
                    rest = &rest[idx + 1..];
                }
            }
        }
        if profiled && self.observed > seg_obs {
            flush_observe_segment("hr", seg_phase.tag(), self.observed - seg_obs, &seg_sw);
        }
    }

    fn observed(&self) -> u64 {
        self.observed
    }

    fn current_size(&self) -> u64 {
        if self.expanded {
            self.bag.len() as u64
        } else {
            self.hist.total()
        }
    }

    fn finalize<R2: Rng + ?Sized>(self, rng: &mut R2) -> Sample<T> {
        self.finalize_with_stats(rng).0
    }

    fn stats(&self) -> SamplerStats {
        self.stats
    }

    fn finalize_with_stats<R2: Rng + ?Sized>(mut self, rng: &mut R2) -> (Sample<T>, SamplerStats) {
        // Feed the statistical self-audit before finalization mutates the
        // state: the stats carry the full inclusion and footprint history.
        let audit = crate::audit::global();
        if self.audit_fresh {
            audit.note_sampler_run(
                self.stats.inclusions,
                crate::audit::expected_inclusions_hr(
                    self.observed,
                    self.policy.n_f(),
                    self.stats.to_phase2_at,
                ),
            );
        }
        audit.note_footprint(self.stats.footprint_hwm, self.policy.n_f());
        let close_lineage = |mut lineage: Vec<LineageEvent>, observed: u64, span: SpanId| {
            push_capped(&mut lineage, LineageEvent::Ingested { elements: observed });
            record(EventKind::Ingest, span.raw(), 0, observed, 0);
            record(EventKind::SpanEnd, span.raw(), 0, 0, 0);
            lineage
        };
        let sample = match self.phase {
            Phase::Exact => Sample::from_parts(
                self.hist,
                SampleKind::Exhaustive,
                self.observed,
                self.policy,
            ),
            Phase::Reservoir => {
                let (hist, size_is_everything) = if self.expanded {
                    (CompactHistogram::from_bag(self.bag), false)
                } else {
                    // The stream ended between the phase switch and the
                    // first skip-selected insertion. The histogram still
                    // holds every element seen up to the switch.
                    let everything = self.hist.total() == self.observed;
                    (self.hist, everything)
                };
                if size_is_everything {
                    // Nothing was ever skipped: the sample is exhaustive.
                    let s = Sample::from_parts(
                        hist,
                        SampleKind::Exhaustive,
                        self.observed,
                        self.policy,
                    )
                    .with_lineage(close_lineage(
                        self.lineage,
                        self.observed,
                        self.span,
                    ));
                    return (s, self.stats);
                }
                let mut hist = hist;
                if hist.total() > self.policy.n_f() {
                    // Materialize the pending lazy purge: a reservoir of
                    // n_F over the prefix; elements after the switch were
                    // skipped by the skip distribution, so uniformity over
                    // the whole stream is preserved (§3.2 conditioning).
                    let start = Stopwatch::start();
                    purge_reservoir(&mut hist, self.policy.n_f(), rng);
                    self.stats.record_purge(start.elapsed_ns());
                    push_capped(
                        &mut self.lineage,
                        LineageEvent::Purge {
                            kind: PurgeKind::Reservoir,
                            survivors: hist.total(),
                        },
                    );
                    record(
                        EventKind::Purge,
                        self.span.raw(),
                        0,
                        PurgeKind::Reservoir.code() as u64,
                        hist.total(),
                    );
                }
                Sample::from_parts(hist, SampleKind::Reservoir, self.observed, self.policy)
            }
        };
        let sample = sample.with_lineage(close_lineage(self.lineage, self.observed, self.span));
        (sample, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_rand::seeded_rng;
    use swh_rand::stats::{chi_square_p_value, chi_square_statistic};

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn small_distinct_population_stays_exact() {
        let mut rng = seeded_rng(1);
        let values: Vec<u64> = (0..50_000u64).map(|i| i % 16).collect();
        let s = HybridReservoir::new(policy(64)).sample_batch(values, &mut rng);
        assert_eq!(s.kind(), SampleKind::Exhaustive);
        assert_eq!(s.size(), 50_000);
    }

    #[test]
    fn unique_population_ends_in_reservoir_of_exact_capacity() {
        let mut rng = seeded_rng(2);
        let n = 100_000u64;
        let n_f = 1024u64;
        let s = HybridReservoir::new(policy(n_f)).sample_batch(0..n, &mut rng);
        assert_eq!(s.kind(), SampleKind::Reservoir);
        assert_eq!(s.size(), n_f, "HR sample size is pinned at n_F");
        assert_eq!(s.parent_size(), n);
    }

    #[test]
    fn footprint_invariant_holds_throughout() {
        let mut rng = seeded_rng(3);
        let n_f = 128u64;
        let mut hr = HybridReservoir::new(policy(n_f));
        for v in 0..50_000u64 {
            hr.observe(v, &mut rng);
            assert!(
                hr.current_slots() <= n_f,
                "slots {} at v={v}",
                hr.current_slots()
            );
        }
        let s = hr.finalize(&mut rng);
        assert!(s.slots() <= n_f);
        assert_eq!(s.size(), n_f);
    }

    #[test]
    fn every_element_equally_likely_after_hybrid_transition() {
        let mut rng = seeded_rng(4);
        let (n, n_f, trials) = (120u64, 16u64, 30_000usize);
        let mut incl = vec![0u64; n as usize];
        for _ in 0..trials {
            let s = HybridReservoir::new(policy(n_f)).sample_batch(0..n, &mut rng);
            assert_eq!(s.size(), n_f);
            for (v, c) in s.histogram().iter() {
                assert_eq!(c, 1);
                incl[*v as usize] += 1;
            }
        }
        let expect = trials as f64 * n_f as f64 / n as f64;
        let exp: Vec<f64> = vec![expect; n as usize];
        let stat = chi_square_statistic(&incl, &exp);
        let pv = chi_square_p_value(stat, (n - 1) as f64);
        assert!(
            pv > 1e-4,
            "inclusion not uniform: chi2={stat:.1} p={pv:.2e}"
        );
    }

    #[test]
    fn stream_ending_right_after_switch_is_handled() {
        // Force the switch, then stop before any skip-selected insertion
        // can fire. The finalized sample must be a uniform subsample of
        // size n_F (or exhaustive if nothing was skipped).
        let mut rng = seeded_rng(5);
        let n_f = 16u64;
        let mut hr = HybridReservoir::new(policy(n_f));
        for v in 0..n_f {
            hr.observe(v, &mut rng); // 16 distinct singletons: slots = 16
        }
        assert_eq!(hr.phase(), 2);
        let s = hr.finalize(&mut rng);
        // Nothing was skipped: all 16 elements are present.
        assert_eq!(s.kind(), SampleKind::Exhaustive);
        assert_eq!(s.size(), n_f);
    }

    #[test]
    fn stream_ending_with_pending_purge_truncates_uniformly() {
        // Values with duplicates so that the switch happens when the
        // histogram holds more *elements* than n_F; stop immediately.
        let mut rng = seeded_rng(6);
        let n_f = 8u64;
        let mut hr = HybridReservoir::new(policy(n_f));
        // 4 pairs -> 8 slots after 8 arrivals of 4 distinct values... each
        // value twice: slots = 2*4 = 8 = n_F triggers switch; total = 8.
        for v in [1u64, 1, 2, 2, 3, 3, 4, 4] {
            hr.observe(v, &mut rng);
        }
        assert_eq!(hr.phase(), 2);
        // A few more arrivals that are skipped (never selected) keep the
        // histogram unexpanded but make it non-exhaustive.
        // next_include is at least observed+1 = 9; observe exactly until
        // just before it so no insertion occurs.
        let upto = hr.next_include - 1;
        let had_skipped_arrivals = upto > hr.observed;
        for v in hr.observed..upto {
            hr.observe(v + 100, &mut rng);
        }
        let s = hr.finalize(&mut rng);
        assert!(s.size() <= n_f);
        if had_skipped_arrivals {
            // Some arrivals were passed over: the sample is a proper subset.
            assert_eq!(s.kind(), SampleKind::Reservoir);
        } else {
            // The skip was 1, so the stream ended exactly at the switch.
            assert_eq!(s.kind(), SampleKind::Exhaustive);
        }
    }

    /// The batched fast path must be indistinguishable from the per-element
    /// loop: same sample, same statistics, same RNG draw sequence — for any
    /// chunking, including the 1 → 2 switch landing mid-batch and the lazy
    /// purge firing inside a batch.
    #[test]
    fn observe_batch_is_byte_identical_to_observe() {
        for &(n, n_f, seed) in &[
            // Stays exact.
            (100u64, 256u64, 31u64),
            // Switch mid-batch, lazy purge at the first batched inclusion.
            (50_000, 128, 32),
            // Duplicate-heavy stream exercising (value, count) pairs.
            (10_000, 64, 33),
        ] {
            for &chunk in &[1usize, 5, 97, 4096] {
                let values: Vec<u64> = (0..n).map(|i| i % (3 * n / 4).max(1)).collect();
                let mut r1 = seeded_rng(seed);
                let mut one = HybridReservoir::new(policy(n_f));
                for v in &values {
                    one.observe(*v, &mut r1);
                }
                let mut r2 = seeded_rng(seed);
                let mut batched = HybridReservoir::new(policy(n_f));
                for c in values.chunks(chunk) {
                    batched.observe_batch(c, &mut r2);
                }
                // purge_ns is wall-clock time, the one legitimately
                // non-deterministic field.
                let mask = |mut s: SamplerStats| {
                    s.purge_ns = 0;
                    s
                };
                assert_eq!(
                    mask(one.stats()),
                    mask(batched.stats()),
                    "stats diverge at n={n} n_f={n_f} chunk={chunk}"
                );
                // Both paths must have consumed the same number of draws.
                assert_eq!(
                    r1.random::<u64>(),
                    r2.random::<u64>(),
                    "RNG streams diverge at n={n} n_f={n_f} chunk={chunk}"
                );
                let s1 = one.finalize(&mut r1);
                let s2 = batched.finalize(&mut r2);
                assert_eq!(s1, s2, "samples diverge at n={n} n_f={n_f} chunk={chunk}");
            }
        }
    }

    #[test]
    fn resume_from_exhaustive() {
        let mut rng = seeded_rng(7);
        let s = HybridReservoir::new(policy(64)).sample_batch(0..10u64, &mut rng);
        let mut hr = HybridReservoir::resume(s, &mut rng);
        hr.observe_all(10..20u64, &mut rng);
        let merged = hr.finalize(&mut rng);
        assert_eq!(merged.kind(), SampleKind::Exhaustive);
        assert_eq!(merged.size(), 20);
    }

    #[test]
    fn resume_from_reservoir_keeps_capacity() {
        let mut rng = seeded_rng(8);
        let n_f = 32u64;
        let s = HybridReservoir::new(policy(n_f)).sample_batch(0..10_000u64, &mut rng);
        assert_eq!(s.kind(), SampleKind::Reservoir);
        let mut hr = HybridReservoir::resume(s, &mut rng);
        hr.observe_all(10_000..20_000u64, &mut rng);
        let merged = hr.finalize(&mut rng);
        assert_eq!(merged.size(), n_f);
        assert_eq!(merged.parent_size(), 20_000);
    }

    #[test]
    fn resume_reservoir_remains_uniform() {
        // Stream 0..60 through HR with n_f 12, then resume with 60..120;
        // every element should appear with frequency 12/120.
        let mut rng = seeded_rng(9);
        let (n_f, trials) = (12u64, 20_000usize);
        let mut incl = vec![0u64; 120];
        for _ in 0..trials {
            let s = HybridReservoir::new(policy(n_f)).sample_batch(0..60u64, &mut rng);
            let mut hr = HybridReservoir::resume(s, &mut rng);
            hr.observe_all(60..120u64, &mut rng);
            for (v, _) in hr.finalize(&mut rng).histogram().iter() {
                incl[*v as usize] += 1;
            }
        }
        let expect = trials as f64 * 12.0 / 120.0;
        let exp: Vec<f64> = vec![expect; 120];
        let stat = chi_square_statistic(&incl, &exp);
        let pv = chi_square_p_value(stat, 119.0);
        assert!(
            pv > 1e-4,
            "resumed HR not uniform: chi2={stat:.1} p={pv:.2e}"
        );
    }

    #[test]
    #[should_panic(expected = "exhaustive or reservoir prior")]
    fn resume_rejects_bernoulli() {
        let mut rng = seeded_rng(10);
        let h = CompactHistogram::from_bag(vec![1u64]);
        let s = Sample::from_parts(
            h,
            SampleKind::Bernoulli {
                q: 0.5,
                p_bound: 1e-3,
            },
            10,
            policy(8),
        );
        HybridReservoir::resume(s, &mut rng);
    }
}
