#![warn(missing_docs)]

//! Core sampling algorithms of *Techniques for Warehousing of Sample Data*
//! (Brown & Haas, ICDE 2006).
//!
//! The crate provides the paper's two new bounded-footprint **uniform**
//! sampling schemes and their merge operators, alongside the classical
//! schemes they are built from and compared against:
//!
//! | Scheme | Type | Uniform? | Bounded footprint? | Compact storage? |
//! |---|---|---|---|---|
//! | [`BernoulliSampler`] | `Bern(q)` | yes | **no** | yes |
//! | [`ReservoirSampler`] | simple random sample | yes | yes | no (bag) |
//! | [`ConciseSampler`] | Gibbons–Matias concise | **no** (§3.3) | yes | yes |
//! | [`HybridBernoulli`] (HB) | exhaustive → `Bern(q)` → reservoir | yes | yes | yes |
//! | [`HybridReservoir`] (HR) | exhaustive → reservoir | yes | yes | yes |
//! | [`StratifiedBernoulli`] (SB) | fixed-rate baseline | yes | no | no |
//!
//! Samples produced by HB and HR are [`Sample`] values carrying the
//! provenance (`Exhaustive`, `Bernoulli{q}`, or `Reservoir`) needed to merge
//! them: [`merge::hb_merge`] implements Fig. 6, [`merge::hr_merge`]
//! implements Fig. 8 (hypergeometric split, Theorem 1), and [`merge::merge`]
//! dispatches on provenance exactly as the paper prescribes.

pub mod audit;
pub mod bernoulli;
pub mod bilevel;
pub mod concise;
pub mod costmodel;
pub mod counting;
pub mod distinct_sampler;
pub mod executor;
pub mod footprint;
pub mod fxhash;
pub mod histogram;
pub mod hybrid_bernoulli;
pub mod hybrid_reservoir;
pub(crate) mod invariant;
pub mod lineage;
pub mod merge;
pub mod planner;
pub mod purge;
pub mod qbound;
pub mod reservoir;
pub mod sample;
pub mod sampler;
pub mod sb;
pub mod stats;
pub mod stratified;
pub mod systematic;
pub mod value;
pub mod weighted;

pub use bernoulli::BernoulliSampler;
pub use bilevel::BiLevelBernoulli;
pub use concise::ConciseSampler;
pub use costmodel::{CostEntry, CostModel};
pub use counting::CountingSampler;
pub use distinct_sampler::DistinctSampler;
pub use footprint::FootprintPolicy;
pub use histogram::CompactHistogram;
pub use hybrid_bernoulli::HybridBernoulli;
pub use hybrid_reservoir::HybridReservoir;
pub use lineage::{LineageEvent, PurgeKind};
pub use merge::{
    hb_merge, hr_merge, hr_merge_cached, hr_merge_multiway, hr_merge_multiway_borrowed,
    hr_merge_tree_cached, merge, merge_all, merge_all_borrowed, merge_borrowed, merge_tree,
    HypergeometricCache, MergeError,
};
pub use planner::{
    fold_cost, merge_planned, plan_union, planned_cost, MergePlan, NodeShape, PlanNode, PlanOp,
    ShapeKind, Skeleton,
};
pub use qbound::{q_approx, q_exact};
pub use reservoir::ReservoirSampler;
pub use sample::{Sample, SampleKind};
pub use sampler::Sampler;
pub use sb::StratifiedBernoulli;
pub use stats::SamplerStats;
pub use stratified::StratifiedSample;
pub use systematic::SystematicSampler;
pub use value::SampleValue;
pub use weighted::WeightedReservoir;
