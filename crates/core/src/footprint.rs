//! The a priori footprint bound shared by every bounded sampler.
//!
//! Requirement 3 of the paper (§2): "the storage required during and after
//! sample creation be bounded a priori, so that there are no unexpected disk
//! or memory shortages." The bound is expressed as `F` bytes; for
//! fixed-width values of `w` bytes this corresponds to a maximum of
//! `n_F = F / w` data-element values (the paper's notation).
//!
//! Storage accounting follows §3.3: a compact sample is a set of
//! `(value, count)` pairs, except that singleton values (count 1) are stored
//! as the bare value. Counts are stored at the same width as values, so in
//! *value slots*:
//!
//! * a singleton costs **1** slot,
//! * a `(value, count)` pair costs **2** slots,
//! * an expanded bag of `m` values costs **m** slots.
//!
//! Because a pair summarizes at least two data elements, the compact
//! footprint never exceeds the number of data elements represented; hence a
//! sample whose *size* is at most `n_F` always fits in `F` bytes in either
//! representation.

/// A priori storage bound for one partition sample.
///
/// ```
/// use swh_core::footprint::FootprintPolicy;
///
/// // 64 KiB of 8-byte values = 8192 value slots (the paper's n_F).
/// let policy = FootprintPolicy::new(64 * 1024, 8);
/// assert_eq!(policy.n_f(), 8192);
/// assert!(policy.compact_overflows(8192));
/// assert!(!policy.compact_overflows(8191));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintPolicy {
    /// Maximum number of value slots (`n_F` in the paper).
    n_f: u64,
    /// Width of one value slot in bytes (presentation only).
    value_bytes: u64,
}

impl FootprintPolicy {
    /// Bound expressed directly as a maximum number of data-element values
    /// (`n_F`), assuming 8-byte values.
    ///
    /// # Panics
    /// Panics if `n_f < 2`: the algorithms need room for at least one
    /// `(value, count)` pair.
    pub fn with_value_budget(n_f: u64) -> Self {
        Self::new(n_f * 8, 8)
    }

    /// Bound expressed as `F` bytes of storage for values of `value_bytes`
    /// bytes each, mirroring the paper's `F`/`n_F` correspondence.
    ///
    /// # Panics
    /// Panics if `value_bytes == 0` or the resulting `n_F` is below 2.
    pub fn new(f_bytes: u64, value_bytes: u64) -> Self {
        assert!(value_bytes > 0, "value width must be positive");
        let n_f = f_bytes / value_bytes;
        assert!(
            n_f >= 2,
            "footprint bound of {f_bytes} bytes holds fewer than 2 values of {value_bytes} bytes"
        );
        Self { n_f, value_bytes }
    }

    /// Maximum number of data-element values a sample may hold (`n_F`).
    #[inline]
    pub fn n_f(&self) -> u64 {
        self.n_f
    }

    /// The byte bound `F`.
    #[inline]
    pub fn f_bytes(&self) -> u64 {
        self.n_f * self.value_bytes
    }

    /// Width of one value slot in bytes.
    #[inline]
    pub fn value_bytes(&self) -> u64 {
        self.value_bytes
    }

    /// Whether a compact histogram occupying `slots` value slots is at or
    /// over the bound (the overflow trigger in Figs. 2 and 7).
    #[inline]
    pub fn compact_overflows(&self, slots: u64) -> bool {
        slots >= self.n_f
    }

    /// Convert a slot count to bytes.
    #[inline]
    pub fn slots_to_bytes(&self, slots: u64) -> u64 {
        slots * self.value_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_budget_constructor() {
        let p = FootprintPolicy::with_value_budget(8192);
        assert_eq!(p.n_f(), 8192);
        assert_eq!(p.f_bytes(), 8192 * 8);
        assert_eq!(p.value_bytes(), 8);
    }

    #[test]
    fn byte_constructor_rounds_down() {
        let p = FootprintPolicy::new(100, 8);
        assert_eq!(p.n_f(), 12);
        assert_eq!(p.f_bytes(), 96);
    }

    #[test]
    fn overflow_test_is_inclusive() {
        let p = FootprintPolicy::with_value_budget(10);
        assert!(!p.compact_overflows(9));
        assert!(p.compact_overflows(10));
        assert!(p.compact_overflows(11));
    }

    #[test]
    fn slot_byte_conversion() {
        let p = FootprintPolicy::new(64, 4);
        assert_eq!(p.slots_to_bytes(3), 12);
    }

    #[test]
    #[should_panic(expected = "fewer than 2 values")]
    fn rejects_tiny_bound() {
        FootprintPolicy::new(8, 8);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        FootprintPolicy::new(64, 0);
    }
}
