//! Distinct sampling (Gibbons, VLDB 2001) — the paper's reference \[6\],
//! "distinct sampling for highly-accurate answers to distinct values
//! queries and event reports".
//!
//! Where the uniform schemes sample the *bag* of values, a distinct sampler
//! samples the **domain of distinct values**: every distinct value is
//! retained independently with probability `2^{-L}` (decided by a hash, so
//! duplicates agree), where the level `L` grows just enough to respect the
//! footprint bound. This yields
//!
//! * an unbiased distinct-count estimator `distinct_in_sample · 2^L`, far
//!   more accurate than extrapolating from a uniform sample on
//!   high-cardinality data; and
//! * a uniform random sample of the *distinct values themselves*
//!   (each retained value also carries its exact multiplicity since
//!   retention, useful for metadata discovery).
//!
//! Like the paper's own samplers, the footprint is bounded a priori and the
//! stored form is compact.

use crate::footprint::FootprintPolicy;
use crate::fxhash::FxHasher;
use crate::histogram::CompactHistogram;
use crate::value::SampleValue;
use std::hash::{BuildHasher, BuildHasherDefault};

/// Streaming distinct sampler with bounded footprint.
#[derive(Debug, Clone)]
pub struct DistinctSampler<T: SampleValue> {
    /// Retained values with exact occurrence counts (since the value's
    /// level qualified — values are never re-admitted, so counts are exact
    /// from first sight or from level promotion onward).
    hist: CompactHistogram<T>,
    /// Current level: values with `hash_level(v) ≥ level` are retained.
    level: u32,
    policy: FootprintPolicy,
    observed: u64,
    hasher: BuildHasherDefault<FxHasher>,
    /// Seed mixed into the hash so different samplers are independent.
    seed: u64,
}

impl<T: SampleValue> DistinctSampler<T> {
    /// Create a distinct sampler under the given footprint bound.
    pub fn new(policy: FootprintPolicy) -> Self {
        Self::with_seed(policy, 0)
    }

    /// Create a distinct sampler whose hash is salted with `seed`
    /// (independent samplers for repeated experiments).
    pub fn with_seed(policy: FootprintPolicy, seed: u64) -> Self {
        Self {
            hist: CompactHistogram::new(),
            level: 0,
            policy,
            observed: 0,
            hasher: BuildHasherDefault::default(),
            seed,
        }
    }

    /// Current level `L` (sampling probability of the distinct domain is
    /// `2^{-L}`).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Elements observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The retained `(value, count)` histogram: a `2^{-L}` domain sample
    /// with exact per-value counts.
    pub fn histogram(&self) -> &CompactHistogram<T> {
        &self.hist
    }

    /// Hash level of a value: number of trailing one-bits of its salted,
    /// finalizer-mixed hash, i.e. geometric with `P(level ≥ l) = 2^{-l}`.
    ///
    /// The raw Fx hash is too structured for bit-level use (e.g. it maps
    /// `0u64` to 0), so a MurmurHash3-style avalanche finalizer is applied
    /// after salting.
    fn hash_level(&self, v: &T) -> u32 {
        let h = self.hasher.hash_one(v) ^ self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(h).trailing_ones()
    }

    /// Process one arriving element.
    pub fn observe(&mut self, value: T) {
        self.observed += 1;
        if self.hash_level(&value) < self.level {
            return;
        }
        // Retained (or already-tracked) value: count exactly.
        self.hist.insert_one(value);
        // Enforce the footprint bound by raising the level and evicting.
        while self.policy.compact_overflows(self.hist.slots()) {
            self.level += 1;
            let level = self.level;
            // Partition retained values by their hash level.
            let evict: Vec<T> = self
                .hist
                .iter()
                .filter(|(v, _)| self.hash_level(v) < level)
                .map(|(v, _)| v.clone())
                .collect();
            for v in evict {
                self.hist.set_count(v, 0);
            }
        }
    }

    /// Observe every element of an iterator.
    pub fn observe_all<I: IntoIterator<Item = T>>(&mut self, values: I) {
        for v in values {
            self.observe(v);
        }
    }

    /// Unbiased estimate of the number of distinct values seen:
    /// `|retained domain| · 2^L`.
    pub fn estimated_distinct(&self) -> f64 {
        self.hist.distinct() as f64 * 2f64.powi(self.level as i32)
    }

    /// Whether the estimate is exact (level 0: nothing was ever evicted).
    pub fn is_exact(&self) -> bool {
        self.level == 0
    }
}

/// MurmurHash3 64-bit avalanche finalizer: every input bit affects every
/// output bit.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn low_cardinality_is_exact() {
        let mut d = DistinctSampler::new(policy(64));
        d.observe_all((0..10_000u64).map(|i| i % 20));
        assert!(d.is_exact());
        assert_eq!(d.estimated_distinct(), 20.0);
        // Counts exact too.
        assert_eq!(d.histogram().count(&0), 500);
    }

    #[test]
    fn footprint_never_exceeds_bound() {
        let n_f = 64u64;
        let mut d = DistinctSampler::new(policy(n_f));
        for v in 0..100_000u64 {
            d.observe(v);
            assert!(
                d.histogram().slots() <= n_f,
                "slots {} at {v}",
                d.histogram().slots()
            );
        }
        assert!(d.level() > 0);
    }

    #[test]
    fn estimate_accuracy_across_cardinalities() {
        // Averaged over independent hash seeds, the estimate should land
        // within a few percent of the true distinct count.
        for &distinct in &[1_000u64, 10_000, 100_000] {
            let runs = 30;
            let mut sum = 0.0;
            for seed in 0..runs {
                let mut d = DistinctSampler::with_seed(policy(512), seed);
                // Each value appears 3 times; arrival interleaved.
                for rep in 0..3u64 {
                    for v in 0..distinct {
                        let _ = rep;
                        d.observe(v * 7);
                    }
                }
                sum += d.estimated_distinct();
            }
            let mean = sum / runs as f64;
            let rel = (mean - distinct as f64).abs() / distinct as f64;
            assert!(
                rel < 0.10,
                "distinct {distinct}: mean estimate {mean} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate_estimate() {
        // Same distinct domain with and without duplicates: the mean
        // estimate must agree with the truth either way. (The two samplers
        // need not agree run-by-run — duplicated values are stored as
        // 2-slot pairs, so the duplicated stream reaches a higher level.)
        let distinct = 50_000u64;
        let runs = 30u64;
        let (mut sum_a, mut sum_b) = (0.0, 0.0);
        for seed in 0..runs {
            let mut a = DistinctSampler::with_seed(policy(128), seed);
            let mut b = DistinctSampler::with_seed(policy(128), seed + 1_000);
            a.observe_all(0..distinct);
            for _ in 0..5 {
                b.observe_all(0..distinct);
            }
            sum_a += a.estimated_distinct();
            sum_b += b.estimated_distinct();
        }
        let (mean_a, mean_b) = (sum_a / runs as f64, sum_b / runs as f64);
        for (label, mean) in [("unique", mean_a), ("x5", mean_b)] {
            let rel = (mean - distinct as f64).abs() / distinct as f64;
            assert!(rel < 0.15, "{label}: mean estimate {mean} (rel {rel:.3})");
        }
    }

    #[test]
    fn retained_counts_are_exact_multiplicities() {
        let mut d = DistinctSampler::new(policy(64));
        // Values 0..10_000, value v appearing 1 + v%3 times.
        for v in 0..10_000u64 {
            for _ in 0..1 + v % 3 {
                d.observe(v);
            }
        }
        for (v, c) in d.histogram().iter() {
            assert_eq!(c, 1 + v % 3, "count wrong for retained value {v}");
        }
    }

    #[test]
    fn domain_sample_is_unbiased_across_values() {
        // Every distinct value retained with the same probability: over
        // many seeds, each value's retention frequency ~ average.
        let n = 200u64;
        let runs = 2_000u64;
        let mut retained = vec![0u64; n as usize];
        for seed in 0..runs {
            let mut d = DistinctSampler::with_seed(policy(32), seed);
            d.observe_all(0..n);
            for (v, _) in d.histogram().iter() {
                retained[*v as usize] += 1;
            }
        }
        let mean = retained.iter().sum::<u64>() as f64 / n as f64;
        for (v, &c) in retained.iter().enumerate() {
            let z = (c as f64 - mean) / mean.sqrt();
            assert!(z.abs() < 6.0, "value {v}: retained {c} vs mean {mean:.1}");
        }
    }
}
