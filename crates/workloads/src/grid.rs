//! The experimental grids of §5.
//!
//! * **Speedup** (Figs. 9–11): fixed population of `2^26` unique-valued
//!   elements, partition counts `1, 2, 4, ..., 1024`.
//! * **Scaleup** (Figs. 12–14): 32K elements per partition, scale factors
//!   (= partition counts) `32, 64, 128, 256, 512`, all three distributions.
//! * **Sample size** (Figs. 15–16): 32K elements per partition, all
//!   partition counts, unique and uniform distributions.

use crate::dataset::{DataDistribution, DataSpec};

/// Elements per partition in the scaleup and sample-size experiments.
pub const PAPER_PARTITION_SIZE: u64 = 32 * 1024;
/// Population size in the speedup experiments (`2^26`).
pub const PAPER_SPEEDUP_POPULATION: u64 = 1 << 26;
/// Maximum number of data-element values per sample in the paper's setup.
pub const PAPER_N_F: u64 = 8192;
/// Partition counts used throughout the evaluation.
pub const PAPER_PARTITION_COUNTS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// Scale factors of the scaleup experiments.
pub const PAPER_SCALE_FACTORS: [u64; 5] = [32, 64, 128, 256, 512];

/// One speedup measurement point: a fixed data set divided into
/// `partitions` pieces.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupScenario {
    /// The data set to sample.
    pub spec: DataSpec,
    /// Number of partitions the batch is divided into.
    pub partitions: u64,
}

/// One scaleup measurement point: `scale` partitions of
/// [`PAPER_PARTITION_SIZE`] elements each.
#[derive(Debug, Clone, Copy)]
pub struct ScaleupScenario {
    /// The data set to sample (population = scale × 32K).
    pub spec: DataSpec,
    /// Scale factor = partition count.
    pub scale: u64,
}

/// Figs. 9–11 grid: population `2^26`, unique values, all partition counts.
/// `population_override` lets callers shrink the run (the shapes are
/// preserved at smaller scales; the full-size run matches the paper).
pub fn paper_speedup_grid(population_override: Option<u64>, seed: u64) -> Vec<SpeedupScenario> {
    let population = population_override.unwrap_or(PAPER_SPEEDUP_POPULATION);
    PAPER_PARTITION_COUNTS
        .iter()
        .filter(|&&p| p <= population)
        .map(|&partitions| SpeedupScenario {
            spec: DataSpec::new(DataDistribution::Unique, population, seed),
            partitions,
        })
        .collect()
}

/// Figs. 12–14 grid: all three distributions × all scale factors, 32K
/// elements per partition. `partition_size_override` shrinks the run.
pub fn paper_scaleup_grid(partition_size_override: Option<u64>, seed: u64) -> Vec<ScaleupScenario> {
    let per = partition_size_override.unwrap_or(PAPER_PARTITION_SIZE);
    let dists = [
        DataDistribution::Unique,
        DataDistribution::PAPER_UNIFORM,
        DataDistribution::PAPER_ZIPF,
    ];
    let mut out = Vec::new();
    for dist in dists {
        for &scale in &PAPER_SCALE_FACTORS {
            out.push(ScaleupScenario {
                spec: DataSpec::new(dist, scale * per, seed),
                scale,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grid_matches_paper() {
        let g = paper_speedup_grid(None, 0);
        assert_eq!(g.len(), 11);
        assert!(g.iter().all(|s| s.spec.population == 1 << 26));
        assert_eq!(g[0].partitions, 1);
        assert_eq!(g[10].partitions, 1024);
    }

    #[test]
    fn speedup_grid_shrinks() {
        let g = paper_speedup_grid(Some(1 << 16), 0);
        assert!(g.iter().all(|s| s.spec.population == 1 << 16));
    }

    #[test]
    fn scaleup_grid_matches_paper() {
        let g = paper_scaleup_grid(None, 0);
        assert_eq!(g.len(), 15); // 3 distributions x 5 scales
        let unique: Vec<_> = g
            .iter()
            .filter(|s| s.spec.distribution == DataDistribution::Unique)
            .collect();
        assert_eq!(unique.len(), 5);
        assert_eq!(unique[0].spec.population, 32 * PAPER_PARTITION_SIZE);
        assert_eq!(unique[4].spec.population, 512 * PAPER_PARTITION_SIZE);
    }

    #[test]
    fn partition_counts_constant_matches_paper_range() {
        assert_eq!(PAPER_PARTITION_COUNTS.len(), 11);
        assert_eq!(PAPER_N_F, 8192);
    }
}
