#![warn(missing_docs)]

//! Workload generators matching the paper's §5 evaluation.
//!
//! The experiments use three kinds of integer data sets:
//!
//! * **unique** — distinct integers `1..=N` (every value appears once);
//! * **uniform** — integers drawn uniformly from `1..=1_000_000`;
//! * **Zipfian** — integers from `1..=4000` with a Zipf distribution (few
//!   distinct values dominate, so bounded samples typically stay exhaustive
//!   — the paper's footnote 5).
//!
//! Population sizes range over `2^20 ..= 2^26` and partition counts over
//! `1 ..= 1024`; [`grid`] builds exactly those scenario grids. Generators
//! are deterministic given a seed, so every figure regeneration is
//! repeatable.

pub mod arrivals;
pub mod dataset;
pub mod grid;

pub use arrivals::{bursty_profile, Arrival, ArrivalProcess, RatePhase};
pub use dataset::{DataDistribution, DataSpec, ValueStream};
pub use grid::{paper_scaleup_grid, paper_speedup_grid, ScaleupScenario, SpeedupScenario};
