//! Timestamped arrival simulation for the paper's streaming scenarios
//! (§2): values arrive as "a streamed sequence of singleton values" whose
//! rate fluctuates, which is what motivates ratio-triggered on-the-fly
//! partitioning and temporal partitioning by wall clock rather than count.
//!
//! An [`ArrivalProcess`] is a Poisson process with a piecewise-constant
//! rate profile; it yields `(timestamp, value)` events where values come
//! from any [`crate::dataset::DataDistribution`].

use crate::dataset::DataSpec;
use swh_rand::exponential::exponential;
use swh_rand::seeded_rng;

/// One constant-rate phase of the arrival profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePhase {
    /// Events per unit time during this phase.
    pub rate: f64,
    /// Duration of the phase in time units.
    pub duration: f64,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Event time (time units since stream start).
    pub time: f64,
    /// The data value.
    pub value: u64,
}

/// Poisson arrival process with a repeating piecewise-constant rate
/// profile.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    phases: Vec<RatePhase>,
    values: crate::dataset::ValueStream,
    rng: rand::rngs::SmallRng,
    /// Current absolute time.
    now: f64,
    /// Index into the (cyclic) phase list.
    phase_idx: usize,
    /// Time remaining in the current phase.
    phase_left: f64,
}

impl ArrivalProcess {
    /// Create a process yielding values of `spec` (its population is the
    /// total number of events) with the given repeating rate profile.
    ///
    /// # Panics
    /// Panics if `phases` is empty or any phase has non-positive rate or
    /// duration.
    pub fn new(spec: DataSpec, phases: Vec<RatePhase>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one rate phase");
        for p in &phases {
            assert!(
                p.rate > 0.0 && p.rate.is_finite(),
                "phase rate must be positive"
            );
            assert!(
                p.duration > 0.0 && p.duration.is_finite(),
                "phase duration must be positive"
            );
        }
        // swh-analyze: allow(panic) -- non-emptiness asserted at entry (documented panic contract)
        let phase_left = phases[0].duration;
        Self {
            phases,
            values: spec.stream(),
            rng: seeded_rng(seed ^ 0xA11C_E5ED),
            now: 0.0,
            phase_idx: 0,
            phase_left,
        }
    }

    /// Current rate (events per time unit).
    pub fn current_rate(&self) -> f64 {
        self.phases[self.phase_idx].rate
    }
}

impl Iterator for ArrivalProcess {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let value = self.values.next()?;
        // Advance time by an exponential gap, crossing phase boundaries
        // with the standard thinning-free piecewise construction: a gap at
        // rate r consumes `gap` time; if it exceeds the phase remainder the
        // residual is re-drawn in the next phase (memorylessness).
        loop {
            let rate = self.phases[self.phase_idx].rate;
            let gap = exponential(&mut self.rng, rate);
            if gap <= self.phase_left {
                self.now += gap;
                self.phase_left -= gap;
                return Some(Arrival {
                    time: self.now,
                    value,
                });
            }
            // Cross into the next phase; by memorylessness we may simply
            // redraw there.
            self.now += self.phase_left;
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
            self.phase_left = self.phases[self.phase_idx].duration;
        }
    }
}

/// Convenience: a two-phase bursty profile — `quiet` rate for `quiet_dur`,
/// then `burst` rate for `burst_dur`, repeating.
pub fn bursty_profile(quiet: f64, quiet_dur: f64, burst: f64, burst_dur: f64) -> Vec<RatePhase> {
    vec![
        RatePhase {
            rate: quiet,
            duration: quiet_dur,
        },
        RatePhase {
            rate: burst,
            duration: burst_dur,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DataDistribution;

    fn spec(n: u64) -> DataSpec {
        DataSpec::new(DataDistribution::Unique, n, 1)
    }

    #[test]
    fn yields_all_events_in_time_order() {
        let p = ArrivalProcess::new(
            spec(1_000),
            vec![RatePhase {
                rate: 10.0,
                duration: 5.0,
            }],
            3,
        );
        let events: Vec<Arrival> = p.collect();
        assert_eq!(events.len(), 1_000);
        for w in events.windows(2) {
            assert!(w[1].time > w[0].time, "timestamps must increase");
        }
        // Values pass through unchanged.
        assert_eq!(events[0].value, 1);
        assert_eq!(events[999].value, 1_000);
    }

    #[test]
    fn constant_rate_matches_event_density() {
        let rate = 50.0;
        let p = ArrivalProcess::new(
            spec(20_000),
            vec![RatePhase {
                rate,
                duration: 1e9,
            }],
            4,
        );
        let events: Vec<Arrival> = p.collect();
        let span = events.last().unwrap().time;
        let measured = events.len() as f64 / span;
        assert!(
            (measured / rate - 1.0).abs() < 0.05,
            "measured rate {measured} vs {rate}"
        );
    }

    #[test]
    fn bursty_profile_concentrates_events() {
        // Quiet 10 ev/u for 10u, burst 1000 ev/u for 1u: most events land
        // in burst windows even though they are 10x shorter.
        let p = ArrivalProcess::new(spec(50_000), bursty_profile(10.0, 10.0, 1_000.0, 1.0), 5);
        let mut burst_events = 0u64;
        let mut total = 0u64;
        for e in p {
            let cycle_pos = e.time % 11.0;
            if cycle_pos >= 10.0 {
                burst_events += 1;
            }
            total += 1;
        }
        let share = burst_events as f64 / total as f64;
        // Expected share = 1000/(10*10 + 1000*1) ≈ 0.909.
        assert!((share - 0.909).abs() < 0.03, "burst share {share}");
    }

    #[test]
    #[should_panic(expected = "at least one rate phase")]
    fn rejects_empty_profile() {
        ArrivalProcess::new(spec(10), vec![], 1);
    }
}
