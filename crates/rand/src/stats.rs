//! Special functions used across the workspace: log-gamma, log binomial
//! coefficients, the regularized incomplete gamma function, and the
//! chi-square CDF (used by the uniformity test harnesses).

use crate::checked::{exact_eq, exact_f64, exact_f64_usize};

/// Natural log of the gamma function, via the Lanczos approximation.
///
/// Accurate to ~15 significant digits for `x > 0`, which is ample for the
/// probability computations in this workspace.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7, n = 9), standard published values.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    // swh-analyze: allow(panic) -- compile-time-constant index into the fixed 9-entry Lanczos table
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + exact_f64_usize(i));
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(exact_f64(n) + 1.0) - ln_gamma(exact_f64(k) + 1.0) - ln_gamma(exact_f64(n - k) + 1.0)
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Computed by the series expansion for `x < a + 1` and by the continued
/// fraction (Lentz's algorithm) otherwise, following Numerical Recipes.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if exact_eq(x, 0.0) {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500u64 {
            let an = -exact_f64(i) * (exact_f64(i) - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - h * (-x + a * x.ln() - ln_gamma(a)).exp()
    }
}

/// Regularized incomplete beta function `I_x(a, b)`, via the continued
/// fraction of Numerical Recipes (`betacf`), with the symmetry transform for
/// fast convergence.
pub fn regularized_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "beta parameters must be positive (a={a}, b={b})"
    );
    assert!((0.0..=1.0).contains(&x), "x must lie in [0, 1], got {x}");
    if exact_eq(x, 0.0) {
        return 0.0;
    }
    if exact_eq(x, 1.0) {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued-fraction evaluation for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300u64 {
        let m = exact_f64(m);
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Exact binomial upper tail `P(X > m)` for `X ~ Binomial(n, q)`, via the
/// incomplete-beta identity `P(X ≤ m) = I_{1−q}(n−m, m+1)`.
///
/// This is the function `f(q)` of the paper (§4.1), whose root `f(q) = p`
/// defines the exact Bernoulli rate that Eq. (1) approximates.
pub fn binomial_tail_gt(n: u64, q: f64, m: u64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must lie in [0, 1], got {q}");
    if m >= n {
        return 0.0;
    }
    // P(X > m) = I_q(m+1, n-m).
    regularized_beta(exact_f64(m) + 1.0, exact_f64(n - m), q)
}

/// CDF of the chi-square distribution with `df` degrees of freedom.
pub fn chi_square_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    regularized_gamma_p(df / 2.0, x / 2.0)
}

/// Pearson chi-square statistic for observed counts against expected counts.
///
/// Panics if the slices differ in length or any expected count is
/// non-positive.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = exact_f64(o) - e;
            d * d / e
        })
        .sum()
}

/// p-value of a Pearson chi-square test with `df` degrees of freedom.
pub fn chi_square_p_value(statistic: f64, df: f64) -> f64 {
    1.0 - chi_square_cdf(statistic, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-9);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Gamma(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Gamma(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn ln_choose_small_values() {
        assert_close(ln_choose(5, 2), 10.0f64.ln(), 1e-10);
        assert_close(ln_choose(10, 5), 252.0f64.ln(), 1e-10);
        assert_close(ln_choose(52, 5), 2_598_960.0f64.ln(), 1e-8);
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
        assert_close(ln_choose(7, 0), 0.0, 1e-12);
        assert_close(ln_choose(7, 7), 0.0, 1e-12);
    }

    #[test]
    fn regularized_gamma_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0; P(a, inf) -> 1
        assert_eq!(regularized_gamma_p(3.0, 0.0), 0.0);
        assert_close(regularized_gamma_p(3.0, 100.0), 1.0, 1e-12);
    }

    #[test]
    fn chi_square_cdf_known_values() {
        // chi2 with 2 df is Exp(1/2): CDF(x) = 1 - exp(-x/2).
        for &x in &[0.5, 1.0, 2.0, 4.0, 10.0] {
            assert_close(chi_square_cdf(x, 2.0), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
        // Median of chi2(1) is ~0.4549.
        assert_close(chi_square_cdf(0.454_936, 1.0), 0.5, 1e-4);
        // 95th percentile of chi2(10) is ~18.307.
        assert_close(chi_square_cdf(18.307, 10.0), 0.95, 1e-4);
    }

    #[test]
    fn regularized_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_close(regularized_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x^2 - 2x^3.
        for &x in &[0.1, 0.3, 0.5, 0.9] {
            assert_close(
                regularized_beta(2.0, 2.0, x),
                3.0 * x * x - 2.0 * x * x * x,
                1e-12,
            );
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        assert_close(
            regularized_beta(3.5, 2.2, 0.4),
            1.0 - regularized_beta(2.2, 3.5, 0.6),
            1e-12,
        );
    }

    #[test]
    fn binomial_tail_matches_direct_sum() {
        // Direct summation for a small case.
        let (n, q, m) = (20u64, 0.3f64, 8u64);
        let direct: f64 = (m + 1..=n)
            .map(|j| (ln_choose(n, j) + j as f64 * q.ln() + (n - j) as f64 * (1.0 - q).ln()).exp())
            .sum();
        assert_close(binomial_tail_gt(n, q, m), direct, 1e-12);
    }

    #[test]
    fn binomial_tail_monotone_in_q() {
        let mut prev = 0.0;
        for i in 1..20 {
            let q = i as f64 / 20.0;
            let t = binomial_tail_gt(100_000, q, 8192);
            assert!(t >= prev, "tail not monotone at q={q}");
            prev = t;
        }
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(binomial_tail_gt(10, 0.5, 10), 0.0);
        assert_eq!(binomial_tail_gt(10, 0.5, 15), 0.0);
        assert_close(binomial_tail_gt(10, 1.0, 5), 1.0, 1e-12);
        assert_close(binomial_tail_gt(10, 0.0, 5), 0.0, 1e-12);
    }

    #[test]
    fn chi_square_statistic_perfect_fit_is_zero() {
        let obs = [10u64, 20, 30];
        let exp = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&obs, &exp), 0.0);
    }

    #[test]
    fn chi_square_p_value_extremes() {
        assert!(chi_square_p_value(0.0, 5.0) > 0.999);
        assert!(chi_square_p_value(100.0, 5.0) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn chi_square_statistic_length_mismatch_panics() {
        chi_square_statistic(&[1, 2], &[1.0]);
    }
}
