#![warn(missing_docs)]

//! Random-variate generation substrate for the sample data warehouse.
//!
//! The sampling algorithms of Brown & Haas (ICDE 2006) rely on a small set of
//! non-uniform random variates and special functions that are implemented
//! here from first principles (the offline dependency set provides only the
//! base `rand` crate):
//!
//! * [`mod@binomial`] — exact binomial variates, used by `purgeBernoulli`
//!   (Fig. 3 of the paper) to thin `(value, count)` pairs.
//! * [`hypergeometric`] — the hypergeometric pmf of Eq. (2), its recurrence
//!   Eq. (3), and inversion/alias sampling, used by `HRMerge` (Fig. 8).
//! * [`alias`] — Walker/Vose alias tables for repeated draws from a fixed
//!   discrete distribution (§4.2 of the paper).
//! * [`normal`] — the standard normal quantile `z_p` and CDF used by the
//!   Bernoulli-rate bound `q(N, p, n_F)` of Eq. (1).
//! * [`skip`] — skip-distance generators: Vitter's reservoir-sampling skips
//!   (Algorithms X and Z) and geometric skips for Bernoulli sampling.
//! * [`zipf`] — Zipfian integer generator for the paper's §5 workloads.
//! * [`stats`] — log-gamma, log-binomial-coefficient, regularized incomplete
//!   gamma, and a chi-square CDF used by the statistical test harnesses.
//! * [`checked`] — checked int↔float conversions and tolerance-based float
//!   comparison, required by the `swh-analyze` numeric-safety lints in
//!   probability code.

pub mod alias;
pub mod binomial;
pub mod checked;
pub mod exponential;
pub mod hypergeometric;
pub mod normal;
pub mod skip;
pub mod stats;
pub mod zipf;

pub use alias::AliasTable;
pub use binomial::binomial;
pub use hypergeometric::Hypergeometric;
pub use normal::{normal_cdf, normal_quantile};
pub use skip::{bernoulli_skip, ReservoirSkip};
pub use zipf::Zipf;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Construct a fast, seedable RNG for reproducible experiments.
///
/// All harness binaries and tests in this workspace derive their randomness
/// from explicit seeds so every figure regeneration is repeatable.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeded_rng_differs_across_seeds() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..100)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(
            same < 3,
            "different seeds should diverge, got {same} collisions"
        );
    }
}
