//! Exponential variates — inter-arrival times for simulating the streamed
//! data-arrival scenarios of §2 (fluctuating arrival rates that motivate
//! on-the-fly partitioning).

use rand::Rng;

/// Draw an `Exponential(rate)` variate (mean `1/rate`), by inversion.
///
/// # Panics
/// Panics unless `rate` is finite and positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive, got {rate}"
    );
    let u = loop {
        let u = rng.random::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn mean_matches_rate() {
        let mut rng = seeded_rng(1);
        for &rate in &[0.5f64, 2.0, 100.0] {
            let n = 50_000;
            let sum: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
            let mean = sum / n as f64;
            let expect = 1.0 / rate;
            // SE of the mean = expect / sqrt(n) — allow 5 SE.
            assert!(
                (mean - expect).abs() < 5.0 * expect / (n as f64).sqrt(),
                "rate {rate}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn memoryless_tail() {
        // P(X > t) = exp(-rate t): check at a few points.
        let mut rng = seeded_rng(2);
        let rate = 1.5;
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| exponential(&mut rng, rate)).collect();
        for &t in &[0.2f64, 0.5, 1.0, 2.0] {
            let frac = draws.iter().filter(|&&x| x > t).count() as f64 / n as f64;
            let expect = (-rate * t).exp();
            assert!((frac - expect).abs() < 0.01, "t={t}: {frac} vs {expect}");
        }
    }

    #[test]
    fn always_positive() {
        let mut rng = seeded_rng(3);
        for _ in 0..1_000 {
            assert!(exponential(&mut rng, 3.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_bad_rate() {
        exponential(&mut seeded_rng(1), 0.0);
    }
}
