//! Checked conversions between integers and floats, and tolerance-based
//! float comparison — the sanctioned alternatives to bare `as` casts and
//! `f64 == f64` in probability code.
//!
//! The paper's guarantees are *statistical*: HB's `P{|S| > n_F} ≤ p` bound
//! (Eq. 1) and HRMerge's hypergeometric split (Eq. 2–3) hold only if the
//! arithmetic that implements them is exact where it claims to be. A bare
//! `u64 as f64` silently rounds above 2⁵³ and a bare `f64 as u64` silently
//! saturates NaN/negative/overflowing values to 0 or `u64::MAX` — either
//! can corrupt a sampling rate or a pmf without failing any test. The
//! `swh-analyze` `numeric-cast` and `float-cmp` lints therefore ban the raw
//! forms in the probability modules and require these helpers, which make
//! every precondition an explicit, panicking check.
//!
//! Every helper is `#[inline]` and compiles to the same single instruction
//! as the raw cast plus a branch that the optimizer can usually hoist, so
//! there is no hot-path penalty for using them.

/// Largest integer magnitude `f64` represents exactly (2⁵³).
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// Convert a count to `f64`, panicking if the value cannot be represented
/// exactly (i.e. exceeds 2⁵³).
///
/// Use for population sizes, sample sizes, and pmf indices — quantities
/// whose rounding would silently bias a probability.
///
/// # Panics
/// Panics if `n > 2^53`.
#[inline]
pub fn exact_f64(n: u64) -> f64 {
    assert!(
        n <= F64_EXACT_MAX,
        "count {n} exceeds 2^53 and cannot be represented exactly as f64"
    );
    // swh-analyze: allow(numeric-cast) -- the one sanctioned conversion site; exactness asserted above
    n as f64
}

/// Convert a `usize` (e.g. a slice length or index) to `f64` exactly.
///
/// # Panics
/// Panics if `n > 2^53`.
#[inline]
pub fn exact_f64_usize(n: usize) -> f64 {
    exact_f64(n as u64) // swh-analyze: allow(numeric-cast) -- usize→u64 is lossless on all supported targets
}

/// Convert an `i64` to `f64`, panicking if the magnitude cannot be
/// represented exactly.
///
/// # Panics
/// Panics if `|n| > 2^53`.
#[inline]
pub fn exact_f64_i64(n: i64) -> f64 {
    assert!(
        n.unsigned_abs() <= F64_EXACT_MAX,
        "value {n} exceeds 2^53 in magnitude and cannot be represented exactly as f64"
    );
    // swh-analyze: allow(numeric-cast) -- the one sanctioned conversion site; exactness asserted above
    n as f64
}

/// Convert a count to `f64`, rounding to the nearest representable value
/// above 2⁵³ instead of panicking.
///
/// For *estimator* code (aggregates, expansion factors) where a relative
/// error of 2⁻⁵³ on astronomically large totals is statistically
/// irrelevant and aborting the query would be worse. Probability and pmf
/// code must use [`exact_f64`] instead.
#[inline]
pub fn rounding_f64(n: u64) -> f64 {
    // swh-analyze: allow(numeric-cast) -- the sanctioned rounding conversion site; rounding documented above
    n as f64
}

/// Convert an `i64` magnitude to `f64`, rounding above 2⁵³ instead of
/// panicking. Estimator-side counterpart of [`exact_f64_i64`].
#[inline]
pub fn rounding_f64_i64(n: i64) -> f64 {
    // swh-analyze: allow(numeric-cast) -- the sanctioned rounding conversion site; rounding documented above
    n as f64
}

/// `a / b` as `f64` with both operands checked exact.
///
/// # Panics
/// Panics if either operand exceeds 2⁵³ or `b == 0`.
#[inline]
pub fn exact_ratio(a: u64, b: u64) -> f64 {
    assert!(b != 0, "exact_ratio denominator is zero");
    exact_f64(a) / exact_f64(b)
}

/// Floor of a finite non-negative `f64`, as `u64`.
///
/// The checked replacement for `x.floor() as u64`: a bare cast maps NaN and
/// negatives to 0 and saturates overflow to `u64::MAX`, all silently.
///
/// # Panics
/// Panics if `x` is NaN, negative, or ≥ 2⁶⁴.
#[inline]
pub fn floor_u64(x: f64) -> u64 {
    assert!(
        x.is_finite() && (0.0..18_446_744_073_709_551_616.0).contains(&x),
        "floor_u64 requires a finite value in [0, 2^64), got {x}"
    );
    // swh-analyze: allow(numeric-cast) -- the one sanctioned conversion site; range asserted above
    x as u64
}

/// Nearest integer of a finite non-negative `f64`, as `u64`.
///
/// # Panics
/// Panics if `x` is NaN, negative, or rounds to ≥ 2⁶⁴.
#[inline]
pub fn round_u64(x: f64) -> u64 {
    floor_u64(x.round())
}

/// Ceiling of a finite non-negative `f64`, as `u64`.
///
/// # Panics
/// Panics if `x` is NaN, negative, or its ceiling is ≥ 2⁶⁴.
#[inline]
pub fn ceil_u64(x: f64) -> u64 {
    floor_u64(x.ceil())
}

/// A `u64` pmf/table index as `usize`.
///
/// # Panics
/// Panics if `n` does not fit in `usize` (32-bit targets).
#[inline]
pub fn as_index(n: u64) -> usize {
    usize::try_from(n).unwrap_or_else(|_| panic!("index {n} does not fit in usize"))
}

/// Absolute-tolerance float equality: `|a − b| ≤ tol`, with NaN never equal.
///
/// The checked replacement for `a == b` on probabilities: exact float
/// equality silently turns into "never true" after any rounding step.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "tolerance must be non-negative");
    (a - b).abs() <= tol
}

/// Relative-tolerance float closeness: `|a − b| ≤ tol · max(|a|, |b|)`.
///
/// Suitable for comparing probabilities or rates whose scale varies.
#[inline]
pub fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    debug_assert!(tol >= 0.0, "tolerance must be non-negative");
    (a - b).abs() <= tol * a.abs().max(b.abs())
}

/// True when a probability-like value is exactly zero (within one ulp of
/// the arithmetic that produced it). Named so the intent survives review.
#[inline]
pub fn is_zero(x: f64) -> bool {
    x.abs() <= f64::EPSILON
}

/// Floor of a non-negative finite `f64`, saturating to `u64::MAX` instead
/// of panicking when the value exceeds the `u64` range. For skip distances
/// and clamped envelope draws where "effectively infinite" is a valid
/// answer.
///
/// # Panics
/// Panics if `x` is NaN or negative.
#[inline]
pub fn saturating_u64(x: f64) -> u64 {
    assert!(
        !x.is_nan() && x >= 0.0,
        "expected a non-negative value, got {x}"
    );
    if x >= 18_446_744_073_709_551_616.0 {
        u64::MAX
    } else {
        // swh-analyze: allow(numeric-cast) -- in-range by the guard above; this is the sanctioned saturating conversion site
        x as u64
    }
}

/// A `usize` table index as `u32`, for compact alias/outcome tables.
///
/// # Panics
/// Panics if `i` does not fit in `u32`.
#[inline]
pub fn index_u32(i: usize) -> u32 {
    u32::try_from(i).unwrap_or_else(|_| panic!("index {i} does not fit in u32"))
}

/// A `u32` table entry widened back to `usize`. Infallible on every
/// supported target (`usize` ≥ 32 bits).
#[inline]
pub fn u32_index(i: u32) -> usize {
    usize::try_from(i).unwrap_or_else(|_| panic!("u32 {i} does not fit in usize"))
}

/// A `usize` length/index as `u64`. Infallible on every supported target
/// (`usize` ≤ 64 bits); spelled as a named conversion so probability code
/// carries no bare casts.
#[inline]
pub fn index_u64(i: usize) -> u64 {
    u64::try_from(i).unwrap_or_else(|_| panic!("usize {i} does not fit in u64"))
}

/// Intentional *exact* float equality, for sentinel and fixed-point guards
/// (`p == 0.0` before dividing, `u == 1.0` from a generator whose support
/// is `[0, 1)`). Routing these through one named helper keeps bare `==` out
/// of probability code without perturbing behavior by a single ulp.
#[inline]
pub fn exact_eq(a: f64, b: f64) -> bool {
    #[allow(clippy::float_cmp)]
    {
        a == b
    }
}

/// Assert that `q` is a valid sampling rate in `(0, 1]`.
///
/// # Panics
/// Panics if `q` is NaN, ≤ 0, or > 1.
#[inline]
pub fn assert_rate(q: f64) {
    assert!(
        q > 0.0 && q <= 1.0,
        "sampling rate must lie in (0, 1], got {q}"
    );
}

/// Assert that `p` is a valid probability in `[0, 1]`.
///
/// # Panics
/// Panics if `p` is NaN or outside `[0, 1]`.
#[inline]
pub fn assert_probability(p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must lie in [0, 1], got {p}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_f64_round_trips_in_range() {
        for n in [0u64, 1, 1 << 20, F64_EXACT_MAX] {
            assert_eq!(exact_f64(n), n as f64);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    fn exact_f64_rejects_imprecise() {
        exact_f64(F64_EXACT_MAX + 1);
    }

    #[test]
    fn exact_f64_i64_handles_signs() {
        assert_eq!(exact_f64_i64(-5), -5.0);
        assert_eq!(exact_f64_i64(7), 7.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    fn exact_f64_i64_rejects_imprecise_negative() {
        exact_f64_i64(-(1i64 << 53) - 1);
    }

    #[test]
    fn exact_ratio_divides() {
        assert_eq!(exact_ratio(3, 4), 0.75);
    }

    #[test]
    #[should_panic(expected = "denominator is zero")]
    fn exact_ratio_rejects_zero_denominator() {
        exact_ratio(1, 0);
    }

    #[test]
    fn floor_round_ceil() {
        assert_eq!(floor_u64(3.9), 3);
        assert_eq!(round_u64(3.5), 4);
        assert_eq!(ceil_u64(3.1), 4);
        assert_eq!(floor_u64(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "finite value in [0, 2^64)")]
    fn floor_rejects_negative() {
        floor_u64(-0.5);
    }

    #[test]
    #[should_panic(expected = "finite value in [0, 2^64)")]
    fn floor_rejects_nan() {
        floor_u64(f64::NAN);
    }

    #[test]
    fn as_index_converts() {
        assert_eq!(as_index(42), 42usize);
    }

    #[test]
    fn approx_and_rel_comparisons() {
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq(0.1, 0.2, 1e-12));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(rel_close(1e12, 1e12 * (1.0 + 1e-13), 1e-12));
        assert!(is_zero(0.0));
        assert!(!is_zero(1e-9));
    }

    #[test]
    fn rate_and_probability_guards() {
        assert_rate(1.0);
        assert_rate(1e-12);
        assert_probability(0.0);
        assert_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn rate_rejects_zero() {
        assert_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn probability_rejects_nan() {
        assert_probability(f64::NAN);
    }
}
