//! The hypergeometric distribution used by `HRMerge`.
//!
//! When merging two reservoir samples drawn from disjoint partitions `D1` and
//! `D2`, the number `L` of elements the merged sample of size `k` takes from
//! the first sample must follow (Eq. 2 of the paper)
//!
//! ```text
//! P(l) = C(|D1|, l) · C(|D2|, k−l) / C(|D1|+|D2|, k),   l = 0..k,
//! ```
//!
//! i.e. a hypergeometric distribution. The paper's Eq. (3) gives the
//! recurrence
//!
//! ```text
//! P(l+1) = (k−l)(|D1|−l) / ((l+1)(|D2|−k+l+1)) · P(l)
//! ```
//!
//! which we evaluate in log space for numerical robustness and then
//! normalize. Sampling is offered via inversion (the paper's default) or via
//! a Walker/Vose [`AliasTable`] for the repeated-symmetric-merge scenario the
//! paper describes in §4.2.

use crate::alias::AliasTable;
use crate::checked::{as_index, exact_f64, index_u64};
use crate::stats::ln_choose;
use rand::Rng;

/// Precomputed hypergeometric distribution `P(l)`, `l = 0..=k`.
///
/// Parameters mirror the paper's notation: `d1 = |D1|`, `d2 = |D2|`, and `k`
/// is the merged sample size with `k ≤ d1 + d2`.
///
/// ```
/// use swh_rand::{seeded_rng, Hypergeometric};
///
/// // How many of a 10-element SRS from a 60+40 union come from the
/// // 60-element side?
/// let h = Hypergeometric::new(60, 40, 10);
/// assert!((h.mean() - 6.0).abs() < 1e-12);
/// let mut rng = seeded_rng(7);
/// let l = h.sample(&mut rng);
/// assert!(l <= 10);
/// ```
#[derive(Debug, Clone)]
pub struct Hypergeometric {
    d1: u64,
    d2: u64,
    k: u64,
    /// Normalized pmf values; `probs[l] = P(L = l)`.
    probs: Vec<f64>,
    /// Cumulative distribution, for inversion sampling.
    cdf: Vec<f64>,
}

impl Hypergeometric {
    /// Build the pmf via the log-space recurrence of Eq. (3).
    ///
    /// # Panics
    /// Panics if `k > d1 + d2`.
    pub fn new(d1: u64, d2: u64, k: u64) -> Self {
        assert!(
            k <= d1 + d2,
            "merged size k={k} exceeds population {d1}+{d2}"
        );
        // Feasible support: max(0, k - d2) ..= min(k, d1).
        let lo = k.saturating_sub(d2);
        let hi = k.min(d1);
        debug_assert!(lo <= hi);

        // Log pmf via recurrence, anchored at lo with value 0 (unnormalized).
        let len = as_index(k + 1);
        let mut ln_p = vec![f64::NEG_INFINITY; len];
        ln_p[as_index(lo)] = 0.0;
        let mut cur = 0.0f64;
        for l in lo..hi {
            // Eq. (3): P(l+1)/P(l) = (k-l)(d1-l) / ((l+1)(d2-k+l+1)).
            let num = exact_f64(k - l) * exact_f64(d1 - l);
            let den = exact_f64(l + 1) * exact_f64(d2 + l + 1 - k);
            cur += (num / den).ln();
            ln_p[as_index(l + 1)] = cur;
        }
        // Exp-normalize.
        let max = ln_p[as_index(lo)..=as_index(hi)]
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mut probs = vec![0.0f64; len];
        let mut total = 0.0;
        for l in lo..=hi {
            let v = (ln_p[as_index(l)] - max).exp();
            probs[as_index(l)] = v;
            total += v;
        }
        let mut cdf = Vec::with_capacity(len);
        let mut acc = 0.0;
        for p in probs.iter_mut() {
            *p /= total;
            acc += *p;
            cdf.push(acc);
        }
        // Clamp the final cumulative value to exactly one.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            d1,
            d2,
            k,
            probs,
            cdf,
        }
    }

    /// `P(L = l)`; zero outside the feasible support.
    pub fn pmf(&self, l: u64) -> f64 {
        usize::try_from(l)
            .ok()
            .and_then(|i| self.probs.get(i))
            .copied()
            .unwrap_or(0.0)
    }

    /// Exact pmf computed directly from Eq. (2) via log binomial
    /// coefficients. Exposed so tests and benchmarks can cross-check the
    /// recurrence.
    pub fn pmf_direct(&self, l: u64) -> f64 {
        if l > self.k {
            return 0.0;
        }
        (ln_choose(self.d1, l) + ln_choose(self.d2, self.k - l)
            - ln_choose(self.d1 + self.d2, self.k))
        .exp()
    }

    /// The full normalized probability vector (length `k + 1`).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Merged sample size `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Expected value `k·d1/(d1+d2)`.
    pub fn mean(&self) -> f64 {
        exact_f64(self.k) * exact_f64(self.d1) / exact_f64(self.d1 + self.d2)
    }

    /// Draw `L` by inversion: binary search of the cumulative distribution.
    ///
    /// This is the paper's "straightforward inversion approach"; it costs
    /// `O(log k)` per draw after the `O(k)` table construction.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.random::<f64>();
        // partition_point returns the count of elements < u, i.e. the first
        // index with cdf >= u.
        index_u64(self.cdf.partition_point(|&c| c < u))
    }

    /// Build an alias table for `O(1)` repeated draws (§4.2 of the paper:
    /// symmetric pairwise merge trees reuse a small set of distributions).
    pub fn alias_table(&self) -> AliasTable {
        AliasTable::new(&self.probs)
    }
}

/// Draw a multivariate hypergeometric vector: the composition
/// `(L_1, ..., L_m)` of a simple random sample of size `k` drawn from the
/// union of `m` disjoint groups with sizes `populations[i]`.
///
/// Generalizes Eq. (2) to `m`-way merges: `L_i` counts how many of the `k`
/// merged elements come from group `i`. Sampled by the chain rule —
/// `L_1 ~ HG(N_1, N_2 + ... + N_m, k)`, then `L_2` from the remainder, etc.
///
/// # Panics
/// Panics if `k` exceeds the total population.
pub fn sample_multivariate<R: Rng + ?Sized>(rng: &mut R, populations: &[u64], k: u64) -> Vec<u64> {
    let total: u64 = populations.iter().sum();
    assert!(k <= total, "draw {k} exceeds total population {total}");
    let mut remaining_total = total;
    let mut remaining_k = k;
    let mut out = Vec::with_capacity(populations.len());
    for (i, &n_i) in populations.iter().enumerate() {
        if remaining_k == 0 {
            out.push(0);
            continue;
        }
        let rest = remaining_total - n_i;
        if i + 1 == populations.len() {
            // Last group takes the remainder.
            out.push(remaining_k);
            break;
        }
        let l = Hypergeometric::new(n_i, rest, remaining_k).sample(rng);
        out.push(l);
        remaining_k -= l;
        remaining_total = rest;
    }
    while out.len() < populations.len() {
        out.push(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::stats::{chi_square_p_value, chi_square_statistic, ln_choose};

    #[test]
    fn pmf_sums_to_one() {
        for &(d1, d2, k) in &[(10u64, 10u64, 5u64), (100, 50, 30), (7, 3, 9), (1, 99, 1)] {
            let h = Hypergeometric::new(d1, d2, k);
            let s: f64 = h.probs().iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "sum {s} for ({d1},{d2},{k})");
        }
    }

    #[test]
    fn recurrence_matches_direct_formula() {
        for &(d1, d2, k) in &[(20u64, 30u64, 10u64), (5, 5, 5), (1000, 2000, 100)] {
            let h = Hypergeometric::new(d1, d2, k);
            for l in 0..=k {
                let a = h.pmf(l);
                let b = h.pmf_direct(l);
                assert!((a - b).abs() < 1e-10, "({d1},{d2},{k}) l={l}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn support_respects_bounds() {
        // k - d2 > 0 forces a lower bound on l.
        let h = Hypergeometric::new(5, 3, 6);
        assert_eq!(h.pmf(0), 0.0);
        assert_eq!(h.pmf(1), 0.0);
        assert_eq!(h.pmf(2), 0.0);
        assert!(h.pmf(3) > 0.0);
        assert!(h.pmf(5) > 0.0);
        assert_eq!(h.pmf(6), 0.0); // l cannot exceed min(k, d1) = 5
    }

    #[test]
    fn degenerate_cases() {
        // All from D1.
        let h = Hypergeometric::new(10, 0, 4);
        assert!((h.pmf(4) - 1.0).abs() < 1e-12);
        // k = 0: always l = 0.
        let h = Hypergeometric::new(10, 10, 0);
        assert!((h.pmf(0) - 1.0).abs() < 1e-12);
        let mut rng = seeded_rng(3);
        assert_eq!(h.sample(&mut rng), 0);
    }

    #[test]
    fn large_populations_are_stable() {
        // Sizes comparable to the paper's 2^26 experiments.
        let h = Hypergeometric::new(1 << 26, 1 << 26, 8192);
        let s: f64 = h.probs().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        let mean: f64 = h
            .probs()
            .iter()
            .enumerate()
            .map(|(l, p)| l as f64 * p)
            .sum();
        assert!((mean - h.mean()).abs() / h.mean() < 1e-6);
    }

    #[test]
    fn inversion_sampling_goodness_of_fit() {
        let h = Hypergeometric::new(30, 50, 20);
        let mut rng = seeded_rng(99);
        let trials = 40_000usize;
        let mut counts = [0u64; 21];
        for _ in 0..trials {
            counts[h.sample(&mut rng) as usize] += 1;
        }
        // Pool cells with expectation < 5.
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        let (mut po, mut pe) = (0u64, 0.0f64);
        for l in 0..=20u64 {
            po += counts[l as usize];
            pe += h.pmf(l) * trials as f64;
            if pe >= 5.0 {
                obs.push(po);
                exp.push(pe);
                po = 0;
                pe = 0.0;
            }
        }
        if pe > 0.0 {
            *obs.last_mut().unwrap() += po;
            *exp.last_mut().unwrap() += pe;
        }
        let stat = chi_square_statistic(&obs, &exp);
        let pv = chi_square_p_value(stat, (obs.len() - 1) as f64);
        assert!(pv > 1e-4, "chi2={stat:.2} p={pv:.2e}");
    }

    #[test]
    fn alias_sampling_matches_inversion_distribution() {
        let h = Hypergeometric::new(25, 40, 15);
        let table = h.alias_table();
        let mut rng = seeded_rng(123);
        let trials = 40_000usize;
        let mut counts = [0u64; 16];
        for _ in 0..trials {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        let (mut po, mut pe) = (0u64, 0.0f64);
        for l in 0..=15u64 {
            po += counts[l as usize];
            pe += h.pmf(l) * trials as f64;
            if pe >= 5.0 {
                obs.push(po);
                exp.push(pe);
                po = 0;
                pe = 0.0;
            }
        }
        if pe > 0.0 {
            *obs.last_mut().unwrap() += po;
            *exp.last_mut().unwrap() += pe;
        }
        let stat = chi_square_statistic(&obs, &exp);
        let pv = chi_square_p_value(stat, (obs.len() - 1) as f64);
        assert!(pv > 1e-4, "chi2={stat:.2} p={pv:.2e}");
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn rejects_oversized_k() {
        Hypergeometric::new(3, 3, 7);
    }

    // Eq. (3) edge cases: the recurrence must survive the boundary
    // configurations HRMerge can feed it.

    #[test]
    fn eq3_edge_k_zero_always_draws_zero() {
        let h = Hypergeometric::new(12, 7, 0);
        assert!((h.pmf(0) - 1.0).abs() < 1e-12);
        let mut rng = seeded_rng(41);
        for _ in 0..200 {
            assert_eq!(h.sample(&mut rng), 0);
        }
    }

    #[test]
    fn eq3_edge_k_equals_union_size_takes_everything() {
        // k = |S1| + |S2|: the merged sample is the whole union, so L = |S1|
        // with probability one.
        let h = Hypergeometric::new(6, 4, 10);
        assert!((h.pmf(6) - 1.0).abs() < 1e-12);
        for l in 0..6u64 {
            assert_eq!(h.pmf(l), 0.0, "pmf({l}) must vanish");
        }
        let mut rng = seeded_rng(42);
        for _ in 0..200 {
            assert_eq!(h.sample(&mut rng), 6);
        }
    }

    #[test]
    fn eq3_edge_empty_partition_contributes_nothing() {
        // |S1| = 0: every draw comes from the other side.
        let h = Hypergeometric::new(0, 8, 3);
        assert!((h.pmf(0) - 1.0).abs() < 1e-12);
        let mut rng = seeded_rng(43);
        for _ in 0..200 {
            assert_eq!(h.sample(&mut rng), 0);
        }
        // Symmetric case: |S2| = 0 forces L = k.
        let h = Hypergeometric::new(8, 0, 3);
        assert!((h.pmf(3) - 1.0).abs() < 1e-12);
        for _ in 0..200 {
            assert_eq!(h.sample(&mut rng), 3);
        }
    }

    #[test]
    fn eq3_edge_degenerate_single_point_support() {
        // N = n on both sides (k = d1 = d2 = 1 and friends): the support
        // collapses to one point and the recurrence must not divide by zero.
        for &(d1, d2, k) in &[(1u64, 1u64, 2u64), (1, 0, 1), (0, 1, 1), (2, 2, 4)] {
            let h = Hypergeometric::new(d1, d2, k);
            let s: f64 = h.probs().iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "({d1},{d2},{k}) sum {s}");
            assert!((h.pmf(d1.min(k)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn multivariate_sums_to_k_and_respects_bounds() {
        let mut rng = seeded_rng(31);
        let pops = [10u64, 0, 25, 5];
        for _ in 0..500 {
            let l = sample_multivariate(&mut rng, &pops, 12);
            assert_eq!(l.iter().sum::<u64>(), 12);
            for (li, ni) in l.iter().zip(&pops) {
                assert!(li <= ni, "{l:?} vs {pops:?}");
            }
            assert_eq!(l[1], 0, "empty group must contribute nothing");
        }
    }

    #[test]
    fn multivariate_k_zero_and_k_total() {
        let mut rng = seeded_rng(32);
        assert_eq!(sample_multivariate(&mut rng, &[3, 4], 0), vec![0, 0]);
        assert_eq!(sample_multivariate(&mut rng, &[3, 4], 7), vec![3, 4]);
    }

    #[test]
    fn multivariate_matches_joint_pmf() {
        // 3 groups of sizes (4, 3, 3), k = 4: chi-square the joint
        // distribution of (L1, L2) against the multivariate hypergeometric
        // pmf C(4,l1) C(3,l2) C(3,k-l1-l2) / C(10,4).
        let pops = [4u64, 3, 3];
        let k = 4u64;
        let mut rng = seeded_rng(33);
        let trials = 50_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let l = sample_multivariate(&mut rng, &pops, k);
            *counts.entry((l[0], l[1])).or_insert(0u64) += 1;
        }
        let denom = ln_choose(10, k);
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        for l1 in 0..=4u64 {
            for l2 in 0..=3u64 {
                if l1 + l2 > k || k - l1 - l2 > 3 {
                    continue;
                }
                let l3 = k - l1 - l2;
                let p = (ln_choose(4, l1) + ln_choose(3, l2) + ln_choose(3, l3) - denom).exp();
                let e = p * trials as f64;
                if e >= 5.0 {
                    obs.push(counts.get(&(l1, l2)).copied().unwrap_or(0));
                    exp.push(e);
                }
            }
        }
        let stat = chi_square_statistic(&obs, &exp);
        let pv = chi_square_p_value(stat, (obs.len() - 1) as f64);
        assert!(pv > 1e-4, "joint pmf mismatch: chi2={stat:.1} p={pv:.2e}");
    }

    #[test]
    #[should_panic(expected = "exceeds total population")]
    fn multivariate_rejects_oversized_k() {
        sample_multivariate(&mut seeded_rng(1), &[2, 2], 5);
    }
}
