//! Exact binomial random variates.
//!
//! `purgeBernoulli` (Fig. 3 of the paper) thins each `(value, count)` pair of
//! a compact sample by replacing `count` with a `Binomial(count, q)` draw, so
//! the warehouse needs a binomial generator that is exact (the statistical
//! uniformity guarantees of Algorithms HB/HR depend on it) and fast for the
//! moderate counts that appear inside bounded-footprint samples.
//!
//! Strategy (following Devroye, *Non-Uniform Random Variate Generation*,
//! which the paper cites as \[5\]):
//!
//! * tiny `n` — direct coin flipping, `O(n)` with trivial constants;
//! * small mean `n·p̃` (with `p̃ = min(p, 1−p)`) — the *first-waiting-time*
//!   method: successes are separated by geometric gaps, costing
//!   `O(n·p̃ + 1)` expected time independent of `n`;
//! * large mean — the BINV-style inversion from the mode, costing `O(√(n·p̃))`
//!   expected steps with exact pmf recursion.

use crate::checked::{exact_eq, exact_f64, floor_u64, index_u64};
use rand::Rng;

/// Number of trials below which plain coin flipping is used.
const DIRECT_LIMIT: u64 = 16;
/// Mean below which the geometric waiting-time method is used.
const WAITING_LIMIT: f64 = 32.0;

/// Draw a `Binomial(n, p)` variate.
///
/// ```
/// use swh_rand::{binomial, seeded_rng};
///
/// let mut rng = seeded_rng(3);
/// let k = binomial(&mut rng, 1_000, 0.25);
/// assert!(k <= 1_000);
/// ```
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    if n == 0 || exact_eq(p, 0.0) {
        return 0;
    }
    if exact_eq(p, 1.0) {
        return n;
    }
    // Work with p̃ = min(p, 1-p) and flip the result if needed.
    let flipped = p > 0.5;
    let pt = if flipped { 1.0 - p } else { p };
    let k = if n <= DIRECT_LIMIT {
        direct(rng, n, pt)
    } else if exact_f64(n) * pt <= WAITING_LIMIT {
        waiting_time(rng, n, pt)
    } else {
        inversion_from_mode(rng, n, pt)
    };
    if flipped {
        n - k
    } else {
        k
    }
}

/// Coin-flipping generator: `O(n)`.
fn direct<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    index_u64((0..n).filter(|_| rng.random::<f64>() < p).count())
}

/// First-waiting-time generator: sum geometric gaps until they pass `n`.
///
/// Expected cost is `O(n·p + 1)`; exact because the gap between successive
/// Bernoulli successes is geometric with parameter `p`.
fn waiting_time<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let ln_q = (1.0 - p).ln();
    debug_assert!(ln_q < 0.0);
    let mut successes = 0u64;
    // Position of the next success, 1-based.
    let mut pos = 0u64;
    loop {
        // Geometric gap: floor(ln U / ln(1-p)) failures before next success.
        let u = loop {
            let u = rng.random::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let gap = (u.ln() / ln_q).floor();
        if gap >= exact_f64(n - pos) {
            return successes;
        }
        pos += floor_u64(gap) + 1;
        if pos > n {
            return successes;
        }
        successes += 1;
        if pos == n {
            return successes;
        }
    }
}

/// Inversion from the mode with exact pmf recursion.
///
/// Starting from the mode `m`, the pmf is walked outward in both directions
/// subtracting probability mass from a uniform draw. Expected number of
/// steps is `O(σ) = O(√(n·p))`.
fn inversion_from_mode<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = exact_f64(n);
    let q = 1.0 - p;
    let mode = floor_u64(((nf + 1.0) * p).floor().min(nf));
    // pmf at the mode, via logs to avoid under/overflow.
    let ln_pmf_mode =
        crate::stats::ln_choose(n, mode) + exact_f64(mode) * p.ln() + exact_f64(n - mode) * q.ln();
    let pmf_mode = ln_pmf_mode.exp();

    // Ratios: pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/q.
    let ratio_up = |k: u64| (exact_f64(n - k) / exact_f64(k + 1)) * (p / q);
    // pmf(k-1)/pmf(k) = k/(n-k+1) * q/p.
    let ratio_down = |k: u64| (exact_f64(k) / exact_f64(n - k + 1)) * (q / p);

    let mut u = rng.random::<f64>();
    // Sweep outward: mode, mode+1, mode-1, mode+2, mode-2, ...
    let mut up_k = mode;
    let mut up_pmf = pmf_mode;
    let mut down_k = mode;
    let mut down_pmf = pmf_mode;

    u -= pmf_mode;
    if u <= 0.0 {
        return mode;
    }
    loop {
        let mut advanced = false;
        if up_k < n {
            up_pmf *= ratio_up(up_k);
            up_k += 1;
            u -= up_pmf;
            if u <= 0.0 {
                return up_k;
            }
            advanced = true;
        }
        if down_k > 0 {
            down_pmf *= ratio_down(down_k);
            down_k -= 1;
            u -= down_pmf;
            if u <= 0.0 {
                return down_k;
            }
            advanced = true;
        }
        if !advanced {
            // Floating point residue; the mass is exhausted. Return the mode
            // (probability of reaching here is ~1e-15).
            return mode;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::stats::{chi_square_p_value, chi_square_statistic, ln_choose};

    fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
        (ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
    }

    #[test]
    fn edge_cases() {
        let mut rng = seeded_rng(7);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn result_bounded_by_n() {
        let mut rng = seeded_rng(11);
        for &n in &[1u64, 5, 17, 100, 10_000] {
            for &p in &[0.01, 0.3, 0.5, 0.7, 0.99] {
                for _ in 0..50 {
                    assert!(binomial(&mut rng, n, p) <= n);
                }
            }
        }
    }

    /// Chi-square goodness-of-fit for all three internal strategies.
    fn gof(n: u64, p: f64, trials: usize, seed: u64) {
        let mut rng = seeded_rng(seed);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..trials {
            counts[binomial(&mut rng, n, p) as usize] += 1;
        }
        // Pool cells with expected count < 5.
        let mut obs = Vec::new();
        let mut exp = Vec::new();
        let mut pooled_o = 0u64;
        let mut pooled_e = 0.0f64;
        for k in 0..=n {
            pooled_o += counts[k as usize];
            pooled_e += binomial_pmf(n, p, k) * trials as f64;
            if pooled_e >= 5.0 {
                obs.push(pooled_o);
                exp.push(pooled_e);
                pooled_o = 0;
                pooled_e = 0.0;
            }
        }
        if pooled_e > 0.0 {
            if let (Some(o), Some(e)) = (obs.last_mut(), exp.last_mut()) {
                *o += pooled_o;
                *e += pooled_e;
            }
        }
        let stat = chi_square_statistic(&obs, &exp);
        let pv = chi_square_p_value(stat, (obs.len() - 1) as f64);
        assert!(pv > 1e-4, "n={n} p={p}: chi2={stat:.2}, p-value={pv:.2e}");
    }

    #[test]
    fn goodness_of_fit_direct_path() {
        gof(10, 0.3, 20_000, 101);
    }

    #[test]
    fn goodness_of_fit_waiting_path() {
        gof(1_000, 0.01, 20_000, 102);
    }

    #[test]
    fn goodness_of_fit_inversion_path() {
        gof(500, 0.4, 20_000, 103);
    }

    #[test]
    fn goodness_of_fit_flipped_p() {
        gof(200, 0.9, 20_000, 104);
    }

    #[test]
    fn mean_and_variance_large_n() {
        let mut rng = seeded_rng(42);
        let (n, p, trials) = (100_000u64, 0.137, 4_000);
        let draws: Vec<f64> = (0..trials)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .collect();
        let mean = draws.iter().sum::<f64>() / trials as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        // Mean within 5 standard errors.
        let se = (true_var / trials as f64).sqrt();
        assert!(
            (mean - true_mean).abs() < 5.0 * se,
            "mean {mean} vs {true_mean}"
        );
        assert!(
            (var / true_var - 1.0).abs() < 0.15,
            "var {var} vs {true_var}"
        );
    }

    #[test]
    #[should_panic(expected = "p must lie in [0, 1]")]
    fn rejects_invalid_p() {
        binomial(&mut seeded_rng(1), 10, 1.5);
    }
}
