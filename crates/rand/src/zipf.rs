//! Zipfian integer generator for the §5 workloads.
//!
//! The paper's third data set is "integer values over the range of 1 to 4000
//! having a Zipf distribution". With such a small domain the cleanest exact
//! generator is inversion over a precomputed CDF with binary search; we also
//! expose the harmonic normalization so tests can check the pmf.

use crate::checked::{as_index, exact_f64, index_u64};
use rand::Rng;

/// Zipf distribution over `{1, ..., n}` with exponent `s > 0`:
/// `P(X = i) ∝ i^{-s}`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Cumulative probabilities, `cdf[i-1] = P(X ≤ i)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for domain size `n` and exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            s.is_finite() && s > 0.0,
            "Zipf exponent must be positive, got {s}"
        );
        let mut cdf = Vec::with_capacity(as_index(n));
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += exact_f64(i).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { n, s, cdf }
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of value `i` (1-based).
    pub fn pmf(&self, i: u64) -> f64 {
        if i == 0 || i > self.n {
            return 0.0;
        }
        let idx = as_index(i - 1);
        if idx == 0 {
            // swh-analyze: allow(panic) -- idx == 0 implies a non-empty cdf (n > 0 is asserted in the constructor)
            self.cdf[0]
        } else {
            self.cdf[idx] - self.cdf[idx - 1]
        }
    }

    /// Draw one value in `{1, ..., n}` by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u = rng.random::<f64>();
        index_u64(self.cdf.partition_point(|&c| c < u)) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use crate::stats::{chi_square_p_value, chi_square_statistic};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let s: f64 = (1..=100).map(|i| z.pmf(i)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(50, 1.2);
        for i in 1..50 {
            assert!(z.pmf(i) > z.pmf(i + 1), "pmf not decreasing at {i}");
        }
    }

    #[test]
    fn pmf_ratio_matches_power_law() {
        let z = Zipf::new(1000, 1.5);
        // P(1)/P(2) = 2^1.5
        let ratio = z.pmf(1) / z.pmf(2);
        assert!((ratio - 2.0f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(10, 1.0);
        let mut rng = seeded_rng(5);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=10).contains(&v));
        }
    }

    #[test]
    fn sampling_goodness_of_fit() {
        let z = Zipf::new(20, 1.0);
        let mut rng = seeded_rng(6);
        let trials = 50_000usize;
        let mut counts = vec![0u64; 20];
        for _ in 0..trials {
            counts[(z.sample(&mut rng) - 1) as usize] += 1;
        }
        let exp: Vec<f64> = (1..=20).map(|i| z.pmf(i) * trials as f64).collect();
        let stat = chi_square_statistic(&counts, &exp);
        let pv = chi_square_p_value(stat, 19.0);
        assert!(pv > 1e-4, "chi2={stat:.1} p={pv:.2e}");
    }

    #[test]
    fn paper_configuration_has_few_heavy_values() {
        // Paper: range 1..4000 Zipf — the head dominates, so samples of such
        // data remain exhaustive histograms (footnote 5).
        let z = Zipf::new(4000, 1.0);
        // Top-100 values carry the majority of the mass for s=1, n=4000.
        let head: f64 = (1..=100).map(|i| z.pmf(i)).sum();
        assert!(head > 0.5, "head mass {head}");
    }

    #[test]
    fn single_value_domain() {
        let z = Zipf::new(1, 2.0);
        let mut rng = seeded_rng(7);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn rejects_empty_domain() {
        Zipf::new(0, 1.0);
    }
}
