//! Walker/Vose alias method for O(1) sampling from a fixed discrete
//! distribution.
//!
//! §4.2 of the paper recommends the alias method when "partition sizes and
//! sample sizes are unchanging and merges are performed in a symmetric
//! pairwise fashion", so that many draws are taken from a small collection of
//! fixed hypergeometric vectors. The paper describes the classic table of
//! probabilities `r_0..r_k` and aliases `a_0..a_k`; we build it with Vose's
//! stable two-worklist construction.

use crate::checked::{exact_f64_usize, index_u32, index_u64, u32_index};
use rand::Rng;

/// Precomputed alias table over outcomes `0..n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for each column.
    prob: Vec<f64>,
    /// Alias outcome used when the column's own outcome is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build an alias table from (possibly unnormalized) non-negative
    /// weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            u32::try_from(weights.len()).is_ok(),
            "alias table too large: {} outcomes",
            weights.len()
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        // Scaled probabilities: mean 1.
        let nf = exact_f64_usize(n);
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * nf / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias = vec![0u32; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = index_u32(l);
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining columns (numerical leftovers) accept with probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = index_u32(i);
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome in O(1): pick a column uniformly, then accept it or
    /// take its alias.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            index_u64(i)
        } else {
            u64::from(self.alias[i])
        }
    }

    /// Reconstruct the probability each outcome is sampled with; used by
    /// tests to confirm the table encodes the input distribution exactly.
    pub fn outcome_probabilities(&self) -> Vec<f64> {
        let n = self.prob.len();
        let nf = exact_f64_usize(n);
        let mut out = vec![0.0f64; n];
        for i in 0..n {
            out[i] += self.prob[i] / nf;
            out[u32_index(self.alias[i])] += (1.0 - self.prob[i]) / nf;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn encodes_distribution_exactly() {
        let weights = [0.1, 0.4, 0.2, 0.3];
        let t = AliasTable::new(&weights);
        let probs = t.outcome_probabilities();
        for (p, w) in probs.iter().zip(&weights) {
            assert!((p - w).abs() < 1e-12, "{p} vs {w}");
        }
    }

    #[test]
    fn handles_unnormalized_weights() {
        let weights = [2.0, 8.0, 6.0, 4.0];
        let t = AliasTable::new(&weights);
        let probs = t.outcome_probabilities();
        let expected = [0.1, 0.4, 0.3, 0.2];
        for (p, e) in probs.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_zero_weights() {
        let weights = [0.0, 1.0, 0.0, 3.0];
        let t = AliasTable::new(&weights);
        let probs = t.outcome_probabilities();
        assert!(probs[0] < 1e-12);
        assert!(probs[2] < 1e-12);
        assert!((probs[1] - 0.25).abs() < 1e-12);
        assert!((probs[3] - 0.75).abs() < 1e-12);
        // Sampling never yields a zero-weight outcome.
        let mut rng = seeded_rng(5);
        for _ in 0..1_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[7.0]);
        let mut rng = seeded_rng(9);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_frequencies_match() {
        let weights = [0.05, 0.15, 0.5, 0.25, 0.05];
        let t = AliasTable::new(&weights);
        let mut rng = seeded_rng(77);
        let trials = 100_000usize;
        let mut counts = [0u64; 5];
        for _ in 0..trials {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            let freq = *c as f64 / trials as f64;
            assert!(
                (freq - w).abs() < 0.01,
                "freq {freq:.4} vs weight {w} (counts {counts:?})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative() {
        AliasTable::new(&[0.5, -0.1]);
    }
}
