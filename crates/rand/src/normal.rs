//! Standard normal CDF and quantile function.
//!
//! The quantile `z_p = Φ⁻¹(1 − p)` appears in Eq. (1) of the paper, which
//! chooses the Bernoulli sampling rate `q(N, p, n_F)` so that the sample size
//! exceeds `n_F` with probability at most `p`. We implement Wichura's AS 241
//! algorithm (`PPND16`), accurate to ~16 significant digits, and a CDF based
//! on an error-function rational approximation.

/// CDF `Φ(x)` of the standard normal distribution.
///
/// Uses `Φ(x) = (1 + sign(x)·P(1/2, x²/2)) / 2` where `P` is the regularized
/// lower incomplete gamma function, giving ~15 significant digits.
pub fn normal_cdf(x: f64) -> f64 {
    if crate::checked::exact_eq(x, 0.0) {
        return 0.5;
    }
    let p = crate::stats::regularized_gamma_p(0.5, x * x / 2.0);
    if x > 0.0 {
        0.5 * (1.0 + p)
    } else {
        0.5 * (1.0 - p)
    }
}

/// Density `φ(x)` of the standard normal distribution.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Quantile function `Φ⁻¹(u)` of the standard normal distribution.
///
/// An AS 241-style rational initial estimate is polished with two Newton
/// steps against the high-precision [`normal_cdf`], giving ~1e-12 accuracy
/// across the full open interval.
///
/// # Panics
/// Panics unless `0 < u < 1`.
pub fn normal_quantile(u: f64) -> f64 {
    assert!(
        u > 0.0 && u < 1.0,
        "normal_quantile requires 0 < u < 1, got {u}"
    );
    let mut z = quantile_estimate(u);
    // Newton refinement: z ← z − (Φ(z) − u)/φ(z). Two steps suffice from a
    // starting point already accurate to ~1e-6.
    for _ in 0..2 {
        let pdf = normal_pdf(z);
        if pdf < 1e-300 {
            break;
        }
        z -= (normal_cdf(z) - u) / pdf;
    }
    z
}

/// Rational-approximation initial estimate (Wichura AS 241 form).
fn quantile_estimate(u: f64) -> f64 {
    let q = u - 0.5;
    if q.abs() <= 0.425 {
        let r = 0.180_625 - q * q;
        return q * poly_r(
            &[
                3.387_132_872_796_366_5e0,
                1.331_416_678_917_843_8e2,
                1.971_590_950_306_551_3e3,
                1.373_716_979_747_783_3e4,
                4.592_195_393_154_987e4,
                6.726_577_092_700_87e4,
                3.343_057_558_358_813e4,
                2.509_080_928_730_122_7e3,
            ],
            r,
        ) / poly_r(
            &[
                1.0,
                4.231_333_070_160_091e1,
                6.871_870_074_920_579e2,
                5.394_196_021_424_751e3,
                2.121_379_430_415_576e4,
                3.930_789_580_009_271e4,
                2.872_908_573_572_194_3e4,
                5.226_495_278_852_545e3,
            ],
            r,
        );
    }
    let mut r = if q < 0.0 { u } else { 1.0 - u };
    r = (-r.ln()).sqrt();
    let val = if r <= 5.0 {
        let r = r - 1.6;
        poly_r(
            &[
                1.423_437_110_749_683_5e0,
                4.630_337_846_156_546e0,
                5.769_497_221_460_691e0,
                3.647_848_324_763_204_5e0,
                1.270_458_252_452_368_4e0,
                2.417_807_251_774_506e-1,
                2.272_384_498_926_918_4e-2,
                7.745_450_142_783_414e-4,
            ],
            r,
        ) / poly_r(
            &[
                1.0,
                2.053_191_626_637_759e0,
                1.676_384_830_183_803_8e0,
                6.897_673_349_851e-1,
                1.481_039_764_274_800_8e-1,
                1.519_866_656_361_645_7e-2,
                5.475_938_084_995_345e-4,
                1.050_750_071_644_416_9e-9,
            ],
            r,
        )
    } else {
        let r = r - 5.0;
        poly_r(
            &[
                6.657_904_643_501_103e0,
                5.463_784_911_164_114e0,
                1.784_826_539_917_291_3e0,
                2.965_605_718_285_048_7e-1,
                2.653_218_952_657_612_4e-2,
                1.242_660_947_388_078_4e-3,
                2.711_555_568_743_487_6e-5,
                2.010_334_399_292_288_1e-7,
            ],
            r,
        ) / poly_r(
            &[
                1.0,
                5.998_322_065_558_88e-1,
                1.369_298_809_227_358e-1,
                1.487_536_129_085_061_5e-2,
                7.868_691_311_456_133e-4,
                1.846_318_317_510_054_8e-5,
                1.421_511_758_316_446e-7,
                2.044_263_103_389_939_7e-15,
            ],
            r,
        )
    };
    if q < 0.0 {
        -val
    } else {
        val
    }
}

/// Horner evaluation with coefficients ordered from constant term upward.
fn poly_r(coef: &[f64], x: f64) -> f64 {
    coef.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn cdf_symmetry_and_center() {
        assert_close(normal_cdf(0.0), 0.5, 1e-9);
        for &x in &[0.5, 1.0, 2.0, 3.0] {
            assert_close(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-7);
        }
    }

    #[test]
    fn cdf_known_values() {
        assert_close(normal_cdf(1.0), 0.841_344_746, 1e-6);
        assert_close(normal_cdf(1.96), 0.975_002_105, 1e-6);
        assert_close(normal_cdf(-2.326_347_9), 0.01, 1e-6);
        assert_close(normal_cdf(3.0), 0.998_650_102, 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        assert_close(normal_quantile(0.5), 0.0, 1e-12);
        assert_close(normal_quantile(0.975), 1.959_963_985, 1e-8);
        assert_close(normal_quantile(0.99), 2.326_347_874, 1e-8);
        assert_close(normal_quantile(0.999), 3.090_232_306, 1e-8);
        assert_close(normal_quantile(0.001), -3.090_232_306, 1e-8);
        assert_close(normal_quantile(1e-9), -5.997_807_015, 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &u in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = normal_quantile(u);
            assert_close(normal_cdf(z), u, 2e-7);
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        let mut u = 1e-6;
        while u < 1.0 - 1e-6 {
            let z = normal_quantile(u);
            assert!(z > prev, "quantile not monotone at u={u}");
            prev = z;
            u += 0.001;
        }
    }

    #[test]
    #[should_panic(expected = "requires 0 < u < 1")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < u < 1")]
    fn quantile_rejects_one() {
        normal_quantile(1.0);
    }
}
