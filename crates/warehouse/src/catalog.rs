//! Thread-safe in-memory catalog of partition samples.
//!
//! The catalog is the heart of the sample warehouse in Fig. 1: sampled
//! partitions `S_{i,j}` are *rolled in* as they are created, retrieved and
//! merged in arbitrary combinations (`S_{*,2}`, `S_{1-2,3-7}`, ...), and
//! *rolled out* when the corresponding full-scale partitions are dropped.

use crate::ids::{DatasetId, PartitionId, PartitionKey};
use crate::lifecycle::{CacheKey, UnionCache};
use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock};
use swh_core::merge::MergeError;
use swh_core::planner::NodeShape;
use swh_core::sample::Sample;
use swh_core::value::SampleValue;

/// Worker budget for one parallel union merge: the machine's available
/// parallelism, capped by the partition count (a deeper budget is useless —
/// the plan has at most `partitions - 1` merge nodes). Thread count never
/// affects results, only wall-clock, so this may vary across machines.
fn merge_threads(partitions: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(partitions)
        .max(1)
}

/// Cost-based serial/parallel cutover for one union query: plan the merge
/// DAG over the selected sample shapes and ask the planner how many workers
/// pay for themselves — predicted node costs come from the measured cost
/// model when a calibration snapshot is loaded
/// ([`swh_core::costmodel::set_global`]), and from the element-count
/// fallback otherwise. `1` means the serial cost-aware plan wins: either
/// the machine has no spare parallelism or the union is too small for
/// worker spawning to pay off (the old fixed "≥ 4 partitions go parallel"
/// rule sent tiny unions through the parallel tree for a loss).
fn planned_workers(shapes: &[NodeShape], n_f: u64, budget: usize) -> usize {
    let model = swh_core::costmodel::global();
    swh_core::planner::plan_union(shapes, n_f).best_threads(budget, model.as_deref())
}

/// A rolled-in partition sample plus bookkeeping.
#[derive(Debug, Clone)]
pub struct PartitionEntry<T: SampleValue> {
    /// The uniform partition sample.
    pub sample: Sample<T>,
    /// Monotonic roll-in sequence number (warehouse-wide).
    pub rolled_in_at: u64,
}

/// Errors from catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The referenced dataset has no partitions rolled in.
    UnknownDataset(DatasetId),
    /// The referenced partition is not in the catalog.
    UnknownPartition(PartitionKey),
    /// A partition with this key is already rolled in.
    DuplicatePartition(PartitionKey),
    /// The requested selection matched no partitions.
    EmptySelection,
    /// Merging the selected samples failed.
    Merge(MergeError),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            CatalogError::UnknownPartition(k) => write!(f, "unknown partition {k}"),
            CatalogError::DuplicatePartition(k) => write!(f, "partition {k} already present"),
            CatalogError::EmptySelection => write!(f, "selection matched no partitions"),
            CatalogError::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<MergeError> for CatalogError {
    fn from(e: MergeError) -> Self {
        CatalogError::Merge(e)
    }
}

/// Concurrent registry mapping `(dataset, partition)` to samples.
///
/// Reads (selection, merging into query samples) take a shared lock;
/// roll-in/roll-out take the exclusive lock briefly. Merging clones the
/// selected samples out of the catalog so the lock is never held across the
/// merge computation.
///
/// ```
/// use swh_core::{FootprintPolicy, HybridReservoir, Sampler};
/// use swh_rand::seeded_rng;
/// use swh_warehouse::{Catalog, DatasetId, PartitionId, PartitionKey};
///
/// let mut rng = seeded_rng(1);
/// let policy = FootprintPolicy::with_value_budget(64);
/// let catalog = Catalog::new();
/// for day in 0..7u64 {
///     let sample = HybridReservoir::new(policy)
///         .sample_batch(day * 1_000..(day + 1) * 1_000, &mut rng);
///     catalog
///         .roll_in(
///             PartitionKey { dataset: DatasetId(1), partition: PartitionId::seq(day) },
///             sample,
///         )
///         .unwrap();
/// }
/// // Uniform sample over a weekend: days 5..7.
/// let weekend = catalog
///     .union_sample(DatasetId(1), |p| p.seq >= 5, 1e-3, &mut rng)
///     .unwrap();
/// assert_eq!(weekend.parent_size(), 2_000);
/// ```
#[derive(Debug)]
pub struct Catalog<T: SampleValue> {
    inner: RwLock<BTreeMap<DatasetId, BTreeMap<PartitionId, PartitionEntry<T>>>>,
    roll_seq: RwLock<u64>,
    cache: RwLock<Option<Arc<UnionCache<T>>>>,
    metrics: CatalogMetrics,
}

/// Cached handles to the catalog's operation counters. Handles are resolved
/// once per catalog so the per-op cost is one relaxed atomic increment, not
/// a registry lookup.
#[derive(Debug, Clone)]
struct CatalogMetrics {
    roll_ins: swh_obs::Counter,
    roll_outs: swh_obs::Counter,
    gets: swh_obs::Counter,
    selects: swh_obs::Counter,
    union_merges: swh_obs::Counter,
    union_serial: swh_obs::Counter,
    union_parallel: swh_obs::Counter,
    merge_ns: swh_obs::Histogram,
}

impl CatalogMetrics {
    fn in_registry(registry: &swh_obs::Registry) -> Self {
        Self {
            roll_ins: registry.counter(
                "swh_catalog_roll_ins_total",
                "Partition samples rolled into the catalog",
            ),
            roll_outs: registry.counter(
                "swh_catalog_roll_outs_total",
                "Partition samples rolled out of the catalog",
            ),
            gets: registry.counter(
                "swh_catalog_gets_total",
                "Single-partition sample retrievals",
            ),
            selects: registry.counter(
                "swh_catalog_selects_total",
                "Partition selection scans over the catalog",
            ),
            union_merges: registry.counter(
                "swh_catalog_union_merges_total",
                "Union-sample merge queries executed",
            ),
            union_serial: registry.counter(
                "swh_catalog_union_serial_total",
                "Union-sample queries the cost model routed to the serial plan",
            ),
            union_parallel: registry.counter(
                "swh_catalog_union_parallel_total",
                "Union-sample queries the cost model routed to the parallel executor",
            ),
            merge_ns: registry.histogram(
                "swh_catalog_merge_ns",
                "Wall-clock nanoseconds per union-sample merge",
            ),
        }
    }
}

impl<T: SampleValue> Default for Catalog<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SampleValue> Catalog<T> {
    /// Empty catalog, reporting its operation counts to the global
    /// [`swh_obs`] registry.
    pub fn new() -> Self {
        Self::with_registry(swh_obs::global())
    }

    /// Empty catalog reporting into an explicit metrics registry (tests use
    /// a private registry to assert exact counts).
    pub fn with_registry(registry: &swh_obs::Registry) -> Self {
        Self {
            inner: RwLock::new(BTreeMap::new()),
            roll_seq: RwLock::new(0),
            cache: RwLock::new(None),
            metrics: CatalogMetrics::in_registry(registry),
        }
    }

    /// Attach a merged-union cache: [`Catalog::union_sample`] and
    /// [`Catalog::union_sample_borrowed`] consult it before planning a
    /// merge, and every roll-in/roll-out (including compactions, which are
    /// roll-outs plus a roll-in) invalidates the dataset's entries. Off by
    /// default — a cache is opt-in because it trades memory for repeat-
    /// union latency.
    pub fn enable_union_cache(&self, cache: Arc<UnionCache<T>>) {
        *self.cache.write().unwrap_or_else(PoisonError::into_inner) = Some(cache);
    }

    /// The attached merged-union cache, if any.
    pub fn union_cache(&self) -> Option<Arc<UnionCache<T>>> {
        self.cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn invalidate_cache(&self, dataset: DatasetId) {
        if let Some(cache) = self.union_cache() {
            cache.invalidate_dataset(dataset);
        }
    }

    /// Roll a partition sample into the warehouse.
    pub fn roll_in(&self, key: PartitionKey, sample: Sample<T>) -> Result<(), CatalogError> {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let ds = map.entry(key.dataset).or_default();
        if ds.contains_key(&key.partition) {
            return Err(CatalogError::DuplicatePartition(key));
        }
        let mut seq = self
            .roll_seq
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *seq += 1;
        ds.insert(
            key.partition,
            PartitionEntry {
                sample,
                rolled_in_at: *seq,
            },
        );
        drop(seq);
        drop(map);
        self.metrics.roll_ins.inc();
        swh_obs::journal::record(
            swh_obs::journal::EventKind::CatalogRollIn,
            0,
            0,
            key.dataset.0,
            key.partition.seq,
        );
        self.invalidate_cache(key.dataset);
        Ok(())
    }

    /// Roll a partition sample out, returning it.
    pub fn roll_out(&self, key: PartitionKey) -> Result<PartitionEntry<T>, CatalogError> {
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let ds = map
            .get_mut(&key.dataset)
            .ok_or(CatalogError::UnknownDataset(key.dataset))?;
        let entry = ds
            .remove(&key.partition)
            .ok_or(CatalogError::UnknownPartition(key))?;
        if ds.is_empty() {
            map.remove(&key.dataset);
        }
        drop(map);
        self.metrics.roll_outs.inc();
        swh_obs::journal::record(
            swh_obs::journal::EventKind::CatalogRollOut,
            0,
            0,
            key.dataset.0,
            key.partition.seq,
        );
        self.invalidate_cache(key.dataset);
        Ok(entry)
    }

    /// Clone one partition's sample out of the catalog.
    pub fn get(&self, key: PartitionKey) -> Result<Sample<T>, CatalogError> {
        self.metrics.gets.inc();
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        map.get(&key.dataset)
            .and_then(|ds| ds.get(&key.partition))
            .map(|e| e.sample.clone())
            .ok_or(CatalogError::UnknownPartition(key))
    }

    /// All datasets currently present.
    pub fn datasets(&self) -> Vec<DatasetId> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .copied()
            .collect()
    }

    /// All partitions of a dataset, in id order.
    pub fn partitions(&self, dataset: DatasetId) -> Result<Vec<PartitionId>, CatalogError> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&dataset)
            .map(|ds| ds.keys().copied().collect())
            .ok_or(CatalogError::UnknownDataset(dataset))
    }

    /// Per-partition sample footprints (bytes) of a dataset, in id order.
    /// Retention policies budget against this.
    pub fn footprints(&self, dataset: DatasetId) -> Result<Vec<(PartitionId, u64)>, CatalogError> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&dataset)
            .map(|ds| {
                ds.iter()
                    .map(|(id, e)| (*id, e.sample.footprint_bytes()))
                    .collect()
            })
            .ok_or(CatalogError::UnknownDataset(dataset))
    }

    /// Number of partitions rolled in across all datasets.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(BTreeMap::len)
            .sum()
    }

    /// True when the catalog holds no partitions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone the samples of the selected partitions (all partitions for
    /// which `select` returns true), in partition order.
    pub fn select(
        &self,
        dataset: DatasetId,
        mut select: impl FnMut(PartitionId) -> bool,
    ) -> Result<Vec<Sample<T>>, CatalogError> {
        self.metrics.selects.inc();
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let ds = map
            .get(&dataset)
            .ok_or(CatalogError::UnknownDataset(dataset))?;
        let picked: Vec<Sample<T>> = ds
            .iter()
            .filter(|(id, _)| select(**id))
            .map(|(_, e)| e.sample.clone())
            .collect();
        if picked.is_empty() {
            return Err(CatalogError::EmptySelection);
        }
        Ok(picked)
    }

    /// Produce a single uniform sample of the union of the selected
    /// partitions (the warehouse's query primitive: `S_K` for
    /// `K ⊆ {1..k}` in requirement 2 of §2).
    ///
    /// The serial/parallel cutover is cost-based: the selection's shapes
    /// are planned into a merge DAG ([`swh_core::planner::plan_union`])
    /// and the planner picks the worker count whose predicted wall-clock —
    /// critical path vs. work/`t`, plus per-worker spawn cost — beats the
    /// serial plan. When it does, the DAG runs on the work-stealing
    /// executor ([`swh_core::merge::merge_tree_parallel`]), whose per-node
    /// RNG streams make the result a pure function of the selection and
    /// the caller's RNG — never of the machine's thread count or steal
    /// order. Otherwise the cost-aware serial plan
    /// ([`swh_core::planner::merge_planned`]) runs, which re-streams large
    /// exhaustive histograms as little as possible. Both produce the same
    /// uniform distribution as a serial fold.
    ///
    /// With a merged-union cache attached
    /// ([`Catalog::enable_union_cache`]), the exact selection is looked up
    /// before planning — a hit skips the merge entirely — and the merged
    /// result is offered back under the invalidation epoch captured while
    /// the selection was snapshotted, so a roll-in/roll-out racing the
    /// merge can never leave a stale entry behind.
    pub fn union_sample<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        mut select: impl FnMut(PartitionId) -> bool,
        p_bound: f64,
        rng: &mut R,
    ) -> Result<Sample<T>, CatalogError> {
        self.metrics.selects.inc();
        let cache = self.union_cache();
        let (picked, cached_key, epoch) = {
            let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            let ds = map
                .get(&dataset)
                .ok_or(CatalogError::UnknownDataset(dataset))?;
            let mut ids = Vec::new();
            let mut picked = Vec::new();
            for (id, e) in ds.iter() {
                if select(*id) {
                    ids.push(*id);
                    picked.push(e.sample.clone());
                }
            }
            if picked.is_empty() {
                return Err(CatalogError::EmptySelection);
            }
            // Probe and epoch-capture happen under the read lock that
            // snapshotted the selection: any mutation serializes either
            // before (we see its invalidation) or after (it bumps the
            // epoch and our insert is refused).
            let n_f = picked.first().map_or(0, |s| s.policy().n_f());
            let (key, epoch) = match &cache {
                Some(c) => {
                    let key = CacheKey::new(dataset, ids, n_f, p_bound);
                    if let Some(hit) = c.get(&key) {
                        return Ok(hit);
                    }
                    (Some(key), c.epoch(dataset))
                }
                None => (None, 0),
            };
            (picked, key, epoch)
        };
        let _prof = swh_obs::profile::enabled()
            .then(|| swh_obs::profile::scope_rooted("catalog/union_sample"));
        let timer = swh_obs::ScopeTimer::new(&self.metrics.merge_ns);
        let shapes: Vec<NodeShape> = picked.iter().map(NodeShape::of).collect();
        let n_f = picked.first().map_or(0, |s| s.policy().n_f());
        let workers = planned_workers(&shapes, n_f, merge_threads(picked.len()));
        let merged = if workers > 1 {
            self.metrics.union_parallel.inc();
            swh_core::merge::merge_tree_parallel(picked, p_bound, workers, rng)?
        } else {
            self.metrics.union_serial.inc();
            swh_core::planner::merge_planned(picked, p_bound, rng)?
        };
        timer.stop();
        self.metrics.union_merges.inc();
        if let (Some(c), Some(key)) = (&cache, cached_key) {
            c.insert(key, merged.clone(), epoch);
        }
        Ok(merged)
    }

    /// [`Catalog::union_sample`] without cloning the selected samples out
    /// of the catalog: the merge runs by reference under the shared read
    /// lock, cloning only the elements that survive into the result. The
    /// tradeoff is inverted relative to `union_sample`: zero up-front
    /// copying, but writers (roll-in/roll-out) block for the duration of
    /// the merge — prefer it for read-mostly catalogs and frequent queries
    /// over large samples.
    ///
    /// Like [`Catalog::union_sample`], the cutover is cost-based: when the
    /// planner predicts a parallel win the DAG runs on the work-stealing
    /// executor ([`swh_core::merge::merge_tree_parallel_borrowed`], hence
    /// the `T: Sync` bound — pool workers share the borrowed samples);
    /// otherwise the selection folds serially
    /// ([`swh_core::merge::merge_all_borrowed`]).
    pub fn union_sample_borrowed<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        mut select: impl FnMut(PartitionId) -> bool,
        p_bound: f64,
        rng: &mut R,
    ) -> Result<Sample<T>, CatalogError>
    where
        T: Sync,
    {
        self.metrics.selects.inc();
        let cache = self.union_cache();
        let map = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let ds = map
            .get(&dataset)
            .ok_or(CatalogError::UnknownDataset(dataset))?;
        let mut ids = Vec::new();
        let mut picked: Vec<&Sample<T>> = Vec::new();
        for (id, e) in ds.iter() {
            if select(*id) {
                ids.push(*id);
                picked.push(&e.sample);
            }
        }
        if picked.is_empty() {
            return Err(CatalogError::EmptySelection);
        }
        let n_f = picked.first().map_or(0, |s| s.policy().n_f());
        let (cached_key, epoch) = match &cache {
            Some(c) => {
                let key = CacheKey::new(dataset, ids, n_f, p_bound);
                if let Some(hit) = c.get(&key) {
                    return Ok(hit);
                }
                (Some(key), c.epoch(dataset))
            }
            None => (None, 0),
        };
        let _prof = swh_obs::profile::enabled()
            .then(|| swh_obs::profile::scope_rooted("catalog/union_sample_borrowed"));
        let timer = swh_obs::ScopeTimer::new(&self.metrics.merge_ns);
        let shapes: Vec<NodeShape> = picked.iter().map(|s| NodeShape::of(s)).collect();
        let workers = planned_workers(&shapes, n_f, merge_threads(picked.len()));
        let merged = if workers > 1 {
            self.metrics.union_parallel.inc();
            swh_core::merge::merge_tree_parallel_borrowed(&picked, p_bound, workers, rng)?
        } else {
            self.metrics.union_serial.inc();
            swh_core::merge::merge_all_borrowed(picked, p_bound, rng)?
        };
        timer.stop();
        self.metrics.union_merges.inc();
        if let (Some(c), Some(key)) = (&cache, cached_key) {
            c.insert(key, merged.clone(), epoch);
        }
        Ok(merged)
    }

    /// Fig. 1's grid queries (`S_{*,2}`, `S_{1-2,3-7}`, ...): a uniform
    /// sample of the union of all partitions whose stream index and
    /// sequence number fall in the given inclusive ranges.
    pub fn union_sample_grid<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        streams: std::ops::RangeInclusive<u32>,
        seqs: std::ops::RangeInclusive<u64>,
        p_bound: f64,
        rng: &mut R,
    ) -> Result<Sample<T>, CatalogError> {
        self.union_sample(
            dataset,
            |p| streams.contains(&p.stream) && seqs.contains(&p.seq),
            p_bound,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn key(ds: u64, seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(ds),
            partition: PartitionId::seq(seq),
        }
    }

    fn sample(range: std::ops::Range<u64>, rng: &mut rand::rngs::SmallRng) -> Sample<u64> {
        HybridReservoir::new(FootprintPolicy::with_value_budget(32)).sample_batch(range, rng)
    }

    #[test]
    fn roll_in_get_roll_out() {
        let mut rng = seeded_rng(1);
        let cat = Catalog::new();
        cat.roll_in(key(1, 0), sample(0..1000, &mut rng)).unwrap();
        cat.roll_in(key(1, 1), sample(1000..2000, &mut rng))
            .unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.partitions(DatasetId(1)).unwrap().len(), 2);
        let s = cat.get(key(1, 0)).unwrap();
        assert_eq!(s.parent_size(), 1000);
        let e = cat.roll_out(key(1, 0)).unwrap();
        assert_eq!(e.sample.parent_size(), 1000);
        assert_eq!(cat.len(), 1);
        assert!(matches!(
            cat.get(key(1, 0)),
            Err(CatalogError::UnknownPartition(_))
        ));
    }

    #[test]
    fn duplicate_roll_in_rejected() {
        let mut rng = seeded_rng(2);
        let cat = Catalog::new();
        cat.roll_in(key(1, 0), sample(0..100, &mut rng)).unwrap();
        let err = cat
            .roll_in(key(1, 0), sample(0..100, &mut rng))
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicatePartition(_)));
    }

    #[test]
    fn union_sample_merges_selection() {
        let mut rng = seeded_rng(3);
        let cat = Catalog::new();
        for d in 0..7u64 {
            cat.roll_in(key(1, d), sample(d * 1000..(d + 1) * 1000, &mut rng))
                .unwrap();
        }
        // "Weekly" sample = union of days 0..7.
        let weekly = cat
            .union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(weekly.parent_size(), 7000);
        assert!(weekly.size() <= 32);
        // Partial selection: days 2..=3.
        let partial = cat
            .union_sample(DatasetId(1), |p| (2..=3).contains(&p.seq), 1e-3, &mut rng)
            .unwrap();
        assert_eq!(partial.parent_size(), 2000);
    }

    #[test]
    fn union_sample_borrowed_matches_owned_contract() {
        let mut rng = seeded_rng(7);
        let cat = Catalog::new();
        for d in 0..7u64 {
            cat.roll_in(key(1, d), sample(d * 1000..(d + 1) * 1000, &mut rng))
                .unwrap();
        }
        let weekly = cat
            .union_sample_borrowed(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(weekly.parent_size(), 7000);
        assert!(weekly.size() <= 32);
        // The catalog's resident samples are untouched by the query.
        assert_eq!(cat.get(key(1, 3)).unwrap().parent_size(), 1000);
        let err = cat
            .union_sample_borrowed(DatasetId(1), |_| false, 1e-3, &mut rng)
            .unwrap_err();
        assert_eq!(err, CatalogError::EmptySelection);
    }

    #[test]
    fn grid_query_selects_stream_and_seq_ranges() {
        // Fig. 1's D_{i,j} matrix: 3 streams x 8 days, values encode (i,j).
        let mut rng = seeded_rng(9);
        let cat = Catalog::new();
        for stream in 0..3u32 {
            for day in 0..8u64 {
                let base = (stream as u64 * 8 + day) * 1_000;
                let s = HybridReservoir::new(FootprintPolicy::with_value_budget(32))
                    .sample_batch(base..base + 1_000, &mut rng);
                cat.roll_in(
                    PartitionKey {
                        dataset: DatasetId(1),
                        partition: PartitionId::new(stream, day),
                    },
                    s,
                )
                .unwrap();
            }
        }
        // S_{1-2, 3-7}: streams 1..=2, days 3..=7 -> 10 partitions.
        let s = cat
            .union_sample_grid(DatasetId(1), 1..=2, 3..=7, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(s.parent_size(), 10_000);
        for (v, _) in s.histogram().iter() {
            let part = v / 1_000;
            let (stream, day) = (part / 8, part % 8);
            assert!((1..=2).contains(&stream), "value from stream {stream}");
            assert!((3..=7).contains(&day), "value from day {day}");
        }
        // S_{*,2}: all streams, day 2 only.
        let s = cat
            .union_sample_grid(DatasetId(1), 0..=u32::MAX, 2..=2, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(s.parent_size(), 3_000);
    }

    #[test]
    fn wide_union_is_deterministic_for_a_seeded_rng() {
        // Whatever path the cost model picks for these 8 partitions,
        // per-node RNG streams keyed by plan position make the result a
        // function of (selection, seed) only — two runs with the same seed
        // must agree exactly, whatever the thread count this machine
        // offers.
        let mut rng = seeded_rng(60);
        let cat = Catalog::new();
        for d in 0..8u64 {
            cat.roll_in(key(1, d), sample(d * 1000..(d + 1) * 1000, &mut rng))
                .unwrap();
        }
        let run = || {
            let mut rng = seeded_rng(61);
            cat.union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
                .unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.parent_size(), 8_000);
        assert!(a.size() <= 32);
        let run_borrowed = || {
            let mut rng = seeded_rng(62);
            cat.union_sample_borrowed(DatasetId(1), |_| true, 1e-3, &mut rng)
                .unwrap()
        };
        let b = run_borrowed();
        assert_eq!(b, run_borrowed());
        assert_eq!(b.parent_size(), 8_000);
    }

    #[test]
    fn small_unions_stay_on_the_serial_plan() {
        // Regression test for the old fixed ">= 4 partitions go parallel"
        // rule: a union of a handful of tiny samples costs a few
        // microseconds of merge work, far below the per-worker spawn cost,
        // so the cost-based cutover must route it through the serial
        // `merge_planned` path regardless of how many cores the machine
        // has. The counters in a private registry pin the routing.
        let registry = swh_obs::Registry::new();
        let cat = Catalog::with_registry(&registry);
        let mut rng = seeded_rng(41);
        for d in 0..6u64 {
            cat.roll_in(key(1, d), sample(d * 100..(d + 1) * 100, &mut rng))
                .unwrap();
        }
        let s = cat
            .union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(s.parent_size(), 600);
        let b = cat
            .union_sample_borrowed(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(b.parent_size(), 600);
        assert_eq!(cat.metrics.union_serial.get(), 2);
        assert_eq!(cat.metrics.union_parallel.get(), 0);
        assert_eq!(cat.metrics.union_merges.get(), 2);
    }

    #[test]
    fn union_cache_serves_repeat_unions_and_invalidates() {
        let registry = swh_obs::Registry::new();
        let cat = Catalog::with_registry(&registry);
        let cache = Arc::new(UnionCache::with_registry(&registry, 1 << 20));
        cat.enable_union_cache(Arc::clone(&cache));
        let mut rng = seeded_rng(77);
        for d in 0..6u64 {
            cat.roll_in(key(1, d), sample(d * 100..(d + 1) * 100, &mut rng))
                .unwrap();
        }
        let a = cat
            .union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        let merges_after_first = cat.metrics.union_merges.get();
        let b = cat
            .union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(a, b, "hit must return the cached merge byte-identically");
        assert_eq!(
            cat.metrics.union_merges.get(),
            merges_after_first,
            "repeat union must not merge again"
        );
        assert_eq!(cache.stats(), (2, 1));
        // Any roll-in invalidates the dataset's entries; the next union
        // recomputes over the new selection.
        cat.roll_in(key(1, 6), sample(600..700, &mut rng)).unwrap();
        assert!(cache.is_empty(), "roll-in must invalidate cached unions");
        let c = cat
            .union_sample(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(c.parent_size(), 700);
        // The borrowed path shares the cache: same selection now hits.
        let d = cat
            .union_sample_borrowed(DatasetId(1), |_| true, 1e-3, &mut rng)
            .unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn empty_selection_is_error() {
        let mut rng = seeded_rng(4);
        let cat = Catalog::new();
        cat.roll_in(key(1, 0), sample(0..100, &mut rng)).unwrap();
        let err = cat
            .union_sample(DatasetId(1), |_| false, 1e-3, &mut rng)
            .unwrap_err();
        assert_eq!(err, CatalogError::EmptySelection);
    }

    #[test]
    fn unknown_dataset_is_error() {
        let cat: Catalog<u64> = Catalog::new();
        assert!(matches!(
            cat.partitions(DatasetId(9)),
            Err(CatalogError::UnknownDataset(_))
        ));
    }

    #[test]
    fn roll_sequence_is_monotonic() {
        let mut rng = seeded_rng(5);
        let cat = Catalog::new();
        cat.roll_in(key(1, 0), sample(0..10, &mut rng)).unwrap();
        cat.roll_in(key(1, 1), sample(10..20, &mut rng)).unwrap();
        let a = cat.roll_out(key(1, 0)).unwrap().rolled_in_at;
        let b = cat.roll_out(key(1, 1)).unwrap().rolled_in_at;
        assert!(a < b);
    }

    #[test]
    fn concurrent_roll_in_from_threads() {
        let cat: Catalog<u64> = Catalog::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cat = &cat;
                scope.spawn(move || {
                    let mut rng = seeded_rng(100 + t);
                    for s in 0..16u64 {
                        cat.roll_in(
                            PartitionKey {
                                dataset: DatasetId(t),
                                partition: PartitionId::seq(s),
                            },
                            sample(s * 10..(s + 1) * 10, &mut rng),
                        )
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(cat.len(), 128);
        assert_eq!(cat.datasets().len(), 8);
    }
}
