//! Sliding-window maintenance of partition samples.
//!
//! "As new daily samples are rolled in and old daily samples are rolled
//! out, the system would approximate stream sampling algorithms such as
//! those described in [1, 11], but with support for parallel processing"
//! (§2). A [`SlidingWindow`] keeps the samples of the most recent `w`
//! temporal partitions of one data set; querying it yields a uniform sample
//! of the window's union — a moving-window sample maintained entirely from
//! per-partition samples.

use std::collections::VecDeque;
use swh_core::merge::{merge_all, merge_all_borrowed, MergeError};
use swh_core::sample::Sample;
use swh_core::value::SampleValue;

/// Samples of the last `w` partitions of one data set.
#[derive(Debug, Clone)]
pub struct SlidingWindow<T: SampleValue> {
    capacity: usize,
    entries: VecDeque<(u64, Sample<T>)>,
}

impl<T: SampleValue> SlidingWindow<T> {
    /// Window over the most recent `capacity` partitions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity + 1),
        }
    }

    /// Window capacity in partitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of partitions currently in the window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no partitions have been rolled in.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Roll in the sample of the next temporal partition (`seq` must be
    /// strictly increasing); rolls out and returns the evicted oldest
    /// sample when the window overflows.
    ///
    /// # Panics
    /// Panics if `seq` is not greater than the last rolled-in sequence.
    pub fn roll_in(&mut self, seq: u64, sample: Sample<T>) -> Option<(u64, Sample<T>)> {
        if let Some((last, _)) = self.entries.back() {
            assert!(
                seq > *last,
                "window sequence must increase ({seq} after {last})"
            );
        }
        self.entries.push_back((seq, sample));
        if self.entries.len() > self.capacity {
            self.entries.pop_front()
        } else {
            None
        }
    }

    /// Sequence numbers currently covered, oldest first.
    pub fn seqs(&self) -> Vec<u64> {
        self.entries.iter().map(|(s, _)| *s).collect()
    }

    /// Total parent size covered by the window.
    pub fn parent_size(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.parent_size()).sum()
    }

    /// Produce a uniform sample of the union of the window's partitions.
    ///
    /// # Panics
    /// Panics if the window is empty.
    pub fn window_sample<R: rand::Rng + ?Sized>(
        &self,
        p_bound: f64,
        rng: &mut R,
    ) -> Result<Sample<T>, MergeError> {
        assert!(!self.entries.is_empty(), "window is empty");
        // Read-mostly path: merge the resident samples by reference so a
        // query stops cloning all w histograms up front.
        merge_all_borrowed(self.entries.iter().map(|(_, s)| s), p_bound, rng)
    }
}

/// Tumbling (non-overlapping) window: partitions accumulate until the
/// window is full, at which point one merged sample of the whole window is
/// emitted and the window restarts — e.g. seven daily partitions folding
/// into one weekly sample, weekly samples into monthly, and so on up a
/// roll-up hierarchy.
#[derive(Debug)]
pub struct TumblingWindow<T: SampleValue> {
    width: usize,
    pending: Vec<(u64, Sample<T>)>,
    p_bound: f64,
}

impl<T: SampleValue> TumblingWindow<T> {
    /// Window of `width` partitions; merges use exceedance bound `p_bound`.
    ///
    /// # Panics
    /// Panics if `width == 0` or `p_bound` is not in `(0, 1)`.
    pub fn new(width: usize, p_bound: f64) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(p_bound > 0.0 && p_bound < 1.0, "p_bound must lie in (0,1)");
        Self {
            width,
            pending: Vec::with_capacity(width),
            p_bound,
        }
    }

    /// Partitions currently accumulated (always `< width` after `roll_in`
    /// returns).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Add the next partition sample. When this fills the window, returns
    /// `(first_seq, last_seq, merged_sample)` and restarts.
    pub fn roll_in<R: rand::Rng + ?Sized>(
        &mut self,
        seq: u64,
        sample: Sample<T>,
        rng: &mut R,
    ) -> Result<Option<(u64, u64, Sample<T>)>, MergeError> {
        if let Some((last, _)) = self.pending.last() {
            assert!(
                seq > *last,
                "window sequence must increase ({seq} after {last})"
            );
        }
        self.pending.push((seq, sample));
        if self.pending.len() < self.width {
            return Ok(None);
        }
        let (first, last) = match (self.pending.first(), self.pending.last()) {
            (Some(f), Some(l)) => (f.0, l.0),
            _ => panic!("pending is non-empty right after a push"),
        };
        let samples = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        let merged = merge_all(samples, self.p_bound, rng)?;
        Ok(Some((first, last, merged)))
    }

    /// Flush a partially filled window (end of stream): merged sample of
    /// whatever is pending, or `None` if the window is empty.
    pub fn flush<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<Option<Sample<T>>, MergeError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let samples = std::mem::take(&mut self.pending)
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        Ok(Some(merge_all(samples, self.p_bound, rng)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;
    use swh_rand::stats::{chi_square_p_value, chi_square_statistic};

    fn day_sample(day: u64, per_day: u64, n_f: u64, rng: &mut rand::rngs::SmallRng) -> Sample<u64> {
        let lo = day * per_day;
        HybridReservoir::new(FootprintPolicy::with_value_budget(n_f))
            .sample_batch(lo..lo + per_day, rng)
    }

    #[test]
    fn window_evicts_oldest() {
        let mut rng = seeded_rng(1);
        let mut w = SlidingWindow::new(7);
        for day in 0..10u64 {
            let evicted = w.roll_in(day, day_sample(day, 1000, 32, &mut rng));
            if day < 7 {
                assert!(evicted.is_none());
            } else {
                assert_eq!(evicted.unwrap().0, day - 7);
            }
        }
        assert_eq!(w.len(), 7);
        assert_eq!(w.seqs(), vec![3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(w.parent_size(), 7000);
    }

    #[test]
    fn window_sample_covers_only_current_window() {
        let mut rng = seeded_rng(2);
        let mut w = SlidingWindow::new(3);
        let per_day = 500u64;
        for day in 0..6u64 {
            w.roll_in(day, day_sample(day, per_day, 16, &mut rng));
        }
        // Window now covers days 3..6, i.e. values [1500, 3000).
        let s = w.window_sample(1e-3, &mut rng).unwrap();
        assert_eq!(s.parent_size(), 3 * per_day);
        for (v, _) in s.histogram().iter() {
            assert!((1500..3000).contains(v), "value {v} outside window");
        }
    }

    #[test]
    fn window_sample_is_uniform_over_window() {
        let mut rng = seeded_rng(3);
        let (days, per_day, n_f, trials) = (3u64, 40u64, 12u64, 15_000usize);
        let n = days * per_day;
        let mut incl = vec![0u64; n as usize];
        for _ in 0..trials {
            let mut w = SlidingWindow::new(days as usize);
            for day in 0..days {
                w.roll_in(day, day_sample(day, per_day, n_f, &mut rng));
            }
            let s = w.window_sample(1e-3, &mut rng).unwrap();
            for (v, _) in s.histogram().iter() {
                incl[*v as usize] += 1;
            }
        }
        let expect = trials as f64 * n_f as f64 / n as f64;
        let exp: Vec<f64> = vec![expect; n as usize];
        let stat = chi_square_statistic(&incl, &exp);
        let pv = chi_square_p_value(stat, (n - 1) as f64);
        assert!(
            pv > 1e-4,
            "window sample not uniform: chi2={stat:.1} p={pv:.2e}"
        );
    }

    #[test]
    fn tumbling_window_emits_weekly_rollups() {
        let mut rng = seeded_rng(10);
        let mut weekly: TumblingWindow<u64> = TumblingWindow::new(7, 1e-3);
        let mut emitted = Vec::new();
        for day in 0..20u64 {
            if let Some((first, last, sample)) = weekly
                .roll_in(day, day_sample(day, 500, 16, &mut rng), &mut rng)
                .unwrap()
            {
                emitted.push((first, last, sample));
            }
        }
        assert_eq!(emitted.len(), 2);
        assert_eq!((emitted[0].0, emitted[0].1), (0, 6));
        assert_eq!((emitted[1].0, emitted[1].1), (7, 13));
        assert_eq!(emitted[0].2.parent_size(), 7 * 500);
        // Days 14..20 still pending; flush the partial window.
        assert_eq!(weekly.pending(), 6);
        let partial = weekly.flush(&mut rng).unwrap().unwrap();
        assert_eq!(partial.parent_size(), 6 * 500);
        assert!(weekly.flush(&mut rng).unwrap().is_none());
    }

    #[test]
    fn tumbling_window_sample_covers_window_only() {
        let mut rng = seeded_rng(11);
        let mut w: TumblingWindow<u64> = TumblingWindow::new(3, 1e-3);
        let mut out = None;
        for day in 0..3u64 {
            out = w
                .roll_in(day, day_sample(day, 400, 8, &mut rng), &mut rng)
                .unwrap();
        }
        let (_, _, s) = out.expect("window full");
        for (v, _) in s.histogram().iter() {
            assert!(*v < 1200, "value {v} outside the window");
        }
    }

    #[test]
    #[should_panic(expected = "sequence must increase")]
    fn rejects_non_monotone_seq() {
        let mut rng = seeded_rng(4);
        let mut w = SlidingWindow::new(3);
        w.roll_in(5, day_sample(5, 100, 16, &mut rng));
        w.roll_in(5, day_sample(5, 100, 16, &mut rng));
    }

    #[test]
    #[should_panic(expected = "window is empty")]
    fn empty_window_sample_panics() {
        let w: SlidingWindow<u64> = SlidingWindow::new(3);
        w.window_sample(1e-3, &mut seeded_rng(1)).unwrap();
    }
}
