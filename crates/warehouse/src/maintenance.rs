//! Incremental maintenance of a total-data-set sample — the paper's first
//! warehousing scenario (§2): "an initial batch of data from an operational
//! system would be bulk loaded, followed up periodically by smaller sets of
//! data reflecting additions to the operational system over time … then
//! merge samples acquired from the update stream so as to maintain a sample
//! of the total data set."
//!
//! [`IncrementalSample`] holds the running uniform sample; each update
//! batch is sampled independently (HB with a known batch size, or HR) and
//! merged in. The footprint stays bounded by the policy no matter how many
//! deltas arrive.

use crate::ingest::SamplerConfig;
use rand::Rng;
use swh_core::footprint::FootprintPolicy;
use swh_core::merge::{merge, MergeError};
use swh_core::sample::Sample;
use swh_core::sampler::Sampler;
use swh_core::value::SampleValue;

/// A continuously maintained uniform sample of a growing data set.
#[derive(Debug)]
pub struct IncrementalSample<T: SampleValue> {
    policy: FootprintPolicy,
    p_bound: f64,
    current: Option<Sample<T>>,
    batches: u64,
    batches_total: swh_obs::Counter,
    merge_ns: swh_obs::Histogram,
}

impl<T: SampleValue> IncrementalSample<T> {
    /// Create an empty maintainer, reporting to the global [`swh_obs`]
    /// registry.
    ///
    /// # Panics
    /// Panics unless `0 < p_bound < 1`.
    pub fn new(policy: FootprintPolicy, p_bound: f64) -> Self {
        Self::with_registry(swh_obs::global(), policy, p_bound)
    }

    /// [`IncrementalSample::new`] against an explicit metrics registry.
    ///
    /// # Panics
    /// Panics unless `0 < p_bound < 1`.
    pub fn with_registry(
        registry: &swh_obs::Registry,
        policy: FootprintPolicy,
        p_bound: f64,
    ) -> Self {
        assert!(p_bound > 0.0 && p_bound < 1.0, "p_bound must lie in (0,1)");
        Self {
            policy,
            p_bound,
            current: None,
            batches: 0,
            batches_total: registry.counter(
                "swh_maintenance_batches_total",
                "Update batches absorbed into incrementally maintained samples",
            ),
            merge_ns: registry.histogram(
                "swh_maintenance_merge_ns",
                "Wall-clock nanoseconds per incremental batch merge",
            ),
        }
    }

    /// Number of batches absorbed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total data-set size covered so far.
    pub fn covered(&self) -> u64 {
        self.current.as_ref().map_or(0, Sample::parent_size)
    }

    /// The current uniform sample of everything absorbed (None before the
    /// first batch).
    pub fn sample(&self) -> Option<&Sample<T>> {
        self.current.as_ref()
    }

    /// Absorb one update batch: sample it (Algorithm HB when
    /// `expected_n` is given, HR otherwise) and merge into the running
    /// sample.
    pub fn apply_batch<R: Rng + ?Sized, I: IntoIterator<Item = T>>(
        &mut self,
        values: I,
        expected_n: Option<u64>,
        rng: &mut R,
    ) -> Result<(), MergeError> {
        let config = match expected_n {
            Some(n) => SamplerConfig::HybridBernoulli {
                expected_n: n,
                p_bound: self.p_bound,
            },
            None => SamplerConfig::HybridReservoir,
        };
        let mut sampler = config.build::<T>(self.policy);
        for v in values {
            sampler.observe(v, rng);
        }
        let delta = sampler.finalize(rng);
        self.batches += 1;
        self.batches_total.inc();
        self.current = Some(match self.current.take() {
            None => delta,
            Some(base) => {
                let timer = swh_obs::ScopeTimer::new(&self.merge_ns);
                let merged = merge(base, delta, self.p_bound, rng)?;
                timer.stop();
                merged
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_rand::seeded_rng;
    use swh_rand::stats::{chi_square_p_value, chi_square_statistic};

    #[test]
    fn bulk_plus_deltas_covers_everything() {
        let mut rng = seeded_rng(1);
        let policy = FootprintPolicy::with_value_budget(1024);
        let mut inc = IncrementalSample::new(policy, 1e-3);
        // Bulk load.
        inc.apply_batch(0..100_000u64, Some(100_000), &mut rng)
            .unwrap();
        assert_eq!(inc.covered(), 100_000);
        // Ten smaller deltas.
        for d in 0..10u64 {
            let lo = 100_000 + d * 5_000;
            inc.apply_batch(lo..lo + 5_000, Some(5_000), &mut rng)
                .unwrap();
        }
        assert_eq!(inc.batches(), 11);
        assert_eq!(inc.covered(), 150_000);
        let s = inc.sample().unwrap();
        assert!(s.size() <= 1024);
        assert!(s.slots() <= 1024);
    }

    #[test]
    fn maintained_sample_is_uniform_over_total() {
        // Bulk of 60 + three deltas of 20: every element of the 120 must be
        // equally represented across runs.
        let mut rng = seeded_rng(2);
        let policy = FootprintPolicy::with_value_budget(16);
        let trials = 20_000usize;
        let mut incl = vec![0u64; 120];
        let mut total = 0u64;
        for _ in 0..trials {
            let mut inc = IncrementalSample::new(policy, 1e-3);
            inc.apply_batch(0..60u64, None, &mut rng).unwrap();
            for d in 0..3u64 {
                let lo = 60 + d * 20;
                inc.apply_batch(lo..lo + 20, None, &mut rng).unwrap();
            }
            for (v, c) in inc.sample().unwrap().histogram().iter() {
                assert_eq!(c, 1);
                incl[*v as usize] += 1;
                total += 1;
            }
        }
        let expect = total as f64 / 120.0;
        let exp = vec![expect; 120];
        let stat = chi_square_statistic(&incl, &exp);
        let pv = chi_square_p_value(stat, 119.0);
        assert!(
            pv > 1e-4,
            "incremental sample not uniform: chi2={stat:.1} p={pv:.2e}"
        );
    }

    #[test]
    fn empty_maintainer_state() {
        let inc: IncrementalSample<u64> =
            IncrementalSample::new(FootprintPolicy::with_value_budget(8), 1e-3);
        assert!(inc.sample().is_none());
        assert_eq!(inc.covered(), 0);
        assert_eq!(inc.batches(), 0);
    }

    #[test]
    fn tiny_deltas_absorbed_exhaustively() {
        let mut rng = seeded_rng(3);
        let policy = FootprintPolicy::with_value_budget(64);
        let mut inc = IncrementalSample::new(policy, 1e-3);
        for d in 0..20u64 {
            inc.apply_batch(d * 3..(d + 1) * 3, None, &mut rng).unwrap();
        }
        // 60 distinct values fit in... 60 slots, just under the bound: the
        // maintained sample stays exhaustive until the footprint forces
        // sampling.
        let s = inc.sample().unwrap();
        assert_eq!(s.parent_size(), 60);
        assert!(s.size() <= 64);
    }
}
