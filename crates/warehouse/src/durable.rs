//! Crash-safe file replacement shared by every store write path.
//!
//! The stores promise that "a crash never leaves a torn sample behind", and
//! a temp-file-plus-rename alone does not deliver that: without an `fsync`
//! of the file *before* the rename, a power loss can surface the renamed
//! file with empty or partial contents, and without an `fsync` of the
//! parent directory *after* the rename, the rename itself can be lost.
//! [`atomic_write`] performs the full discipline:
//!
//! 1. write the payload to a uniquely named temp file
//!    (`<name>.<pid>.<counter>.tmp`, so concurrent saves to one key can
//!    never tear each other's temp file),
//! 2. `fsync` the temp file,
//! 3. `rename` it over the final path,
//! 4. `fsync` the parent directory.
//!
//! A crash at any point leaves either the previous file or the new one —
//! plus, at worst, an orphaned `.tmp` file that [`sweep_orphan_tmp`]
//! removes at store-open time. Files that are nevertheless corrupt (torn
//! by pre-fix writers, bit rot, truncation) are moved aside by
//! [`quarantine_file`] with a per-file reason instead of aborting loads.
//!
//! Under `cfg(test)` (or the `failpoints` feature) the [`fault`] module can
//! kill [`atomic_write`] at every step, so the crash matrix is testable
//! without actual power loss. Fault sweeps and recovery run at *open* time
//! only; sweeping a directory with in-flight writers could remove a live
//! temp file.
//!
//! Every sync is timed into `swh_store_fsync_ns` and counted into
//! `swh_store_fsync_total`; recovery and quarantine publish
//! `swh_store_recovered_tmp_total` and `swh_store_quarantined_total`, and
//! additionally record `store_recovery` / `store_quarantine` events in the
//! trace journal.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use swh_obs::journal::EventKind;
use swh_obs::trace::{Op, Span};
use swh_obs::Stopwatch;

/// The steps of [`atomic_write`] at which an injected fault can kill the
/// write. Listed in execution order; `AfterDirSync` fires after the write
/// is fully durable (the control point of the crash matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The temp file exists but holds no payload yet.
    AfterTempCreate,
    /// Half of the payload has been written (a torn temp file).
    AfterPartialPayload,
    /// The whole payload is written but not yet synced.
    AfterPayload,
    /// Payload synced; the rename has not happened.
    BeforeRename,
    /// Renamed over the final path; the directory entry is not yet synced.
    AfterRename,
    /// Everything completed (crash immediately after the write).
    AfterDirSync,
}

/// Injectable failpoints: arm a [`CrashPoint`] on the current thread and
/// the next [`atomic_write`] that reaches it fails *at* that step, without
/// cleaning up — exactly what a crash would leave behind.
#[cfg(any(test, feature = "failpoints"))]
pub mod fault {
    use super::CrashPoint;
    use std::cell::Cell;

    thread_local! {
        static ARMED: Cell<Option<CrashPoint>> = const { Cell::new(None) };
    }

    /// Arm a crash point for the current thread (one shot: it disarms when
    /// it fires).
    pub fn arm(point: CrashPoint) {
        ARMED.with(|a| a.set(Some(point)));
    }

    /// Disarm any armed crash point.
    pub fn disarm() {
        ARMED.with(|a| a.set(None));
    }

    /// True (consuming the armed point) when `point` is armed.
    pub(crate) fn fire(point: CrashPoint) -> bool {
        ARMED.with(|a| {
            if a.get() == Some(point) {
                a.set(None);
                true
            } else {
                false
            }
        })
    }
}

/// Fail with an injected-crash error when `point` is armed (no-op outside
/// test/failpoint builds).
fn crash_check(point: CrashPoint) -> io::Result<()> {
    #[cfg(any(test, feature = "failpoints"))]
    if fault::fire(point) {
        return Err(io::Error::other(format!("injected crash at {point:?}")));
    }
    #[cfg(not(any(test, feature = "failpoints")))]
    let _ = point;
    Ok(())
}

/// Cached handles to the durability metrics (resolved once per process,
/// mirroring the catalog's cached-handle pattern).
#[derive(Debug)]
struct DurableMetrics {
    fsync_ns: swh_obs::Histogram,
    fsync_total: swh_obs::Counter,
    recovered_tmp: swh_obs::Counter,
    quarantined: swh_obs::Counter,
}

fn metrics() -> &'static DurableMetrics {
    static METRICS: OnceLock<DurableMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = swh_obs::global();
        DurableMetrics {
            fsync_ns: g.histogram(
                "swh_store_fsync_ns",
                "Wall-clock nanoseconds per store fsync (file and directory)",
            ),
            fsync_total: g.counter(
                "swh_store_fsync_total",
                "Store fsync calls issued (file and directory)",
            ),
            recovered_tmp: g.counter(
                "swh_store_recovered_tmp_total",
                "Orphaned temp files removed by store-open recovery sweeps",
            ),
            quarantined: g.counter(
                "swh_store_quarantined_total",
                "Corrupt store files moved into quarantine/",
            ),
        }
    })
}

/// Process-wide counter making concurrent temp names unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Durably replace `final_path` with `bytes`: unique temp file, write,
/// `fsync(file)`, rename, `fsync(parent dir)`. The parent directory must
/// already exist. On success the new content is crash-durable; on failure
/// the previous content (if any) is still intact under `final_path`.
pub fn atomic_write(final_path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = final_path.parent().filter(|p| !p.as_os_str().is_empty());
    let Some(parent) = parent else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "atomic_write target has no parent directory",
        ));
    };
    let Some(name) = final_path.file_name().and_then(|n| n.to_str()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "atomic_write target has no utf-8 file name",
        ));
    };
    let tmp = parent.join(format!(
        "{name}.{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = fs::File::create(&tmp)?;
    crash_check(CrashPoint::AfterTempCreate)?;
    // Written in two halves purely so AfterPartialPayload models a torn
    // payload; a single write_all is not atomic either.
    let half = bytes.len() / 2;
    f.write_all(&bytes[..half])?;
    crash_check(CrashPoint::AfterPartialPayload)?;
    f.write_all(&bytes[half..])?;
    crash_check(CrashPoint::AfterPayload)?;
    timed_sync(&f)?;
    drop(f);
    crash_check(CrashPoint::BeforeRename)?;
    fs::rename(&tmp, final_path)?;
    crash_check(CrashPoint::AfterRename)?;
    sync_dir(parent)?;
    crash_check(CrashPoint::AfterDirSync)?;
    Ok(())
}

fn timed_sync(f: &fs::File) -> io::Result<()> {
    let sw = Stopwatch::start();
    let r = f.sync_all();
    let m = metrics();
    m.fsync_ns.record(sw.elapsed_ns());
    m.fsync_total.inc();
    r
}

/// `fsync` a directory so a rename inside it survives a crash. On
/// platforms where directories cannot be opened/synced (non-Unix), the
/// sync is skipped — rename ordering is the best those filesystems offer.
fn sync_dir(dir: &Path) -> io::Result<()> {
    match fs::File::open(dir) {
        Ok(d) => timed_sync(&d),
        Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
        Err(e) => Err(e),
    }
}

/// Recursively remove orphaned `*.tmp` files under `root` (crash leftovers
/// from interrupted [`atomic_write`]s). Returns how many were removed; a
/// missing `root` counts as zero. Call only at store-open time, never with
/// writers in flight.
pub fn sweep_orphan_tmp(root: &Path) -> io::Result<u64> {
    let removed = sweep_tree(root)?;
    if removed > 0 {
        metrics().recovered_tmp.add(removed);
        note_recovery(removed);
    }
    Ok(removed)
}

/// Record a recovery sweep (with how many files it removed) in the journal.
fn note_recovery(removed: u64) {
    let span = Span::root(Op::Recovery);
    span.event(EventKind::StoreRecovery, removed, 0);
    span.end();
}

fn sweep_tree(dir: &Path) -> io::Result<u64> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0u64;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            removed += sweep_tree(&path)?;
        } else if path.extension().is_some_and(|ext| ext == "tmp") {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Remove orphaned temp files `<prefix>*.tmp` directly inside `dir` (for
/// single-file stores like the dataset registry, whose directory may also
/// hold other stores' live files). Returns how many were removed.
pub fn sweep_tmp_with_prefix(dir: &Path, prefix: &str) -> io::Result<u64> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0u64;
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(prefix) && name.ends_with(".tmp") {
            fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    if removed > 0 {
        metrics().recovered_tmp.add(removed);
        note_recovery(removed);
    }
    Ok(removed)
}

/// Move a corrupt file out of the store into `<root>/quarantine/`,
/// mirroring its path relative to `root`, and drop a `<file>.reason`
/// sidecar next to it explaining why. Returns the quarantined path.
pub fn quarantine_file(root: &Path, path: &Path, reason: &str) -> io::Result<PathBuf> {
    let rel: &Path = match path.strip_prefix(root) {
        Ok(rel) => rel,
        // Not under root (shouldn't happen): fall back to the bare name.
        Err(_) => Path::new(path.file_name().unwrap_or(path.as_os_str())),
    };
    let dest = root.join("quarantine").join(rel);
    if let Some(dir) = dest.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::rename(path, &dest)?;
    let mut reason_path = dest.clone().into_os_string();
    reason_path.push(".reason");
    fs::write(PathBuf::from(reason_path), reason)?;
    metrics().quarantined.inc();
    swh_obs::journal::record(EventKind::StoreQuarantine, 0, 0, 1, 0);
    Ok(dest)
}

/// Count `*.tmp` files under `root` (recursive) — test/fsck helper for
/// asserting that recovery left nothing behind.
pub fn count_orphan_tmp(root: &Path) -> io::Result<u64> {
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut found = 0u64;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            found += count_orphan_tmp(&path)?;
        } else if path.extension().is_some_and(|ext| ext == "tmp") {
            found += 1;
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swh-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = tmp_dir("replace");
        let target = dir.join("file.bin");
        atomic_write(&target, b"first").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"first");
        atomic_write(&target, b"second").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second");
        assert_eq!(count_orphan_tmp(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_before_rename_keeps_previous_content() {
        let dir = tmp_dir("pre-rename");
        let target = dir.join("file.bin");
        atomic_write(&target, b"old").unwrap();
        for point in [
            CrashPoint::AfterTempCreate,
            CrashPoint::AfterPartialPayload,
            CrashPoint::AfterPayload,
            CrashPoint::BeforeRename,
        ] {
            fault::arm(point);
            let err = atomic_write(&target, b"new").unwrap_err();
            assert!(err.to_string().contains("injected crash"), "{point:?}");
            assert_eq!(fs::read(&target).unwrap(), b"old", "{point:?}");
            // The crash leaves an orphan; recovery removes it.
            assert_eq!(count_orphan_tmp(&dir).unwrap(), 1, "{point:?}");
            assert_eq!(sweep_orphan_tmp(&dir).unwrap(), 1, "{point:?}");
            assert_eq!(count_orphan_tmp(&dir).unwrap(), 0, "{point:?}");
        }
        fault::disarm();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_after_rename_keeps_new_content() {
        let dir = tmp_dir("post-rename");
        let target = dir.join("file.bin");
        atomic_write(&target, b"old").unwrap();
        for point in [CrashPoint::AfterRename, CrashPoint::AfterDirSync] {
            atomic_write(&target, b"old").unwrap();
            fault::arm(point);
            assert!(atomic_write(&target, b"new").is_err(), "{point:?}");
            assert_eq!(fs::read(&target).unwrap(), b"new", "{point:?}");
            assert_eq!(count_orphan_tmp(&dir).unwrap(), 0, "{point:?}");
        }
        fault::disarm();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_moves_file_and_writes_reason() {
        let dir = tmp_dir("quarantine");
        let ds = dir.join("ds1");
        fs::create_dir_all(&ds).unwrap();
        let bad = ds.join("p0_0.swhs");
        fs::write(&bad, b"garbage").unwrap();
        let dest = quarantine_file(&dir, &bad, "checksum mismatch").unwrap();
        assert!(!bad.exists());
        assert_eq!(dest, dir.join("quarantine").join("ds1").join("p0_0.swhs"));
        assert_eq!(fs::read(&dest).unwrap(), b"garbage");
        let reason = dir.join("quarantine").join("ds1").join("p0_0.swhs.reason");
        assert_eq!(fs::read_to_string(reason).unwrap(), "checksum mismatch");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefix_sweep_leaves_other_files_alone() {
        let dir = tmp_dir("prefix");
        fs::write(dir.join("names.tsv.123.0.tmp"), b"x").unwrap();
        fs::write(dir.join("other.tmp"), b"x").unwrap();
        fs::write(dir.join("names.tsv"), b"x").unwrap();
        assert_eq!(sweep_tmp_with_prefix(&dir, "names.tsv.").unwrap(), 1);
        assert!(dir.join("other.tmp").exists());
        assert!(dir.join("names.tsv").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unique_temp_names_for_concurrent_writers() {
        // Many threads replacing one target concurrently: every write
        // succeeds and the survivor is one of the payloads, never torn.
        let dir = tmp_dir("concurrent");
        let target = dir.join("file.bin");
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 4096]).collect();
        std::thread::scope(|scope| {
            for p in &payloads {
                let target = target.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        atomic_write(&target, p).unwrap();
                    }
                });
            }
        });
        let survivor = fs::read(&target).unwrap();
        assert!(payloads.contains(&survivor), "torn file survived");
        assert_eq!(count_orphan_tmp(&dir).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
