//! Ingestion-side partitioning (§2 of the paper).
//!
//! * [`StreamRouter`] splits one incoming stream over `k` samplers, as when
//!   "the incoming stream could be split over a number of machines and
//!   samples from the concurrent sampling processes merged on demand".
//! * [`RatioBoundedPartitioner`] performs the on-the-fly temporal
//!   partitioning the paper describes for fluctuating arrival rates: a
//!   partition is finalized as soon as the sample-to-parent ratio falls to a
//!   specified lower bound, and a fresh partition (and sample) begins.
//! * [`SamplerConfig`] selects which bounded algorithm ingestion uses.

use rand::Rng;
use std::hash::{BuildHasher, BuildHasherDefault};
use swh_core::footprint::FootprintPolicy;
use swh_core::fxhash::FxHasher;
use swh_core::hybrid_bernoulli::HybridBernoulli;
use swh_core::hybrid_reservoir::HybridReservoir;
use swh_core::sample::Sample;
use swh_core::sampler::Sampler;
use swh_core::value::SampleValue;
use swh_core::SamplerStats;

/// Publish one finalized sampler's [`SamplerStats`] into a metrics registry
/// under the shared `swh_sampler_*` names, so any front end (CLI, bench
/// harnesses) exposes per-run sampler behaviour the same way.
pub fn publish_sampler_stats(registry: &swh_obs::Registry, stats: &SamplerStats) {
    registry
        .counter(
            "swh_sampler_inclusions_total",
            "elements included by finalized samplers",
        )
        .add(stats.inclusions);
    registry
        .counter(
            "swh_sampler_rejections_total",
            "elements rejected by finalized samplers",
        )
        .add(stats.rejections);
    registry
        .counter(
            "swh_sampler_purges_total",
            "footprint purges run by finalized samplers",
        )
        .add(stats.purges);
    registry
        .counter("swh_sampler_purge_ns_total", "nanoseconds spent purging")
        .add(stats.purge_ns);
    registry
        .gauge(
            "swh_sampler_footprint_hwm_slots",
            "high-water mark of occupied sample slots",
        )
        .record_max(i64::try_from(stats.footprint_hwm).unwrap_or(i64::MAX));
    if let Some(at) = stats.to_phase2_at {
        registry
            .gauge(
                "swh_sampler_phase2_transition_at",
                "element index of the phase 1 -> 2 switch",
            )
            .set(i64::try_from(at).unwrap_or(i64::MAX));
    }
    if let Some(at) = stats.to_phase3_at {
        registry
            .gauge(
                "swh_sampler_phase3_transition_at",
                "element index of the phase 2 -> 3 switch",
            )
            .set(i64::try_from(at).unwrap_or(i64::MAX));
    }
}

/// Which bounded-footprint algorithm ingestion should run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerConfig {
    /// Algorithm HB with the given expected partition size and exceedance
    /// probability (requires the partition size a priori, §4.3).
    HybridBernoulli {
        /// Expected partition size `N`.
        expected_n: u64,
        /// Target `P{|S| > n_F}`.
        p_bound: f64,
    },
    /// Algorithm HR (no a priori size needed).
    HybridReservoir,
}

/// A sampler built from a [`SamplerConfig`] — the small closed set of
/// algorithms ingestion supports.
#[derive(Debug, Clone)]
pub enum ConfiguredSampler<T: SampleValue> {
    /// Algorithm HB.
    Hb(HybridBernoulli<T>),
    /// Algorithm HR.
    Hr(HybridReservoir<T>),
}

impl SamplerConfig {
    /// Instantiate a sampler for one partition.
    pub fn build<T: SampleValue>(&self, policy: FootprintPolicy) -> ConfiguredSampler<T> {
        match *self {
            SamplerConfig::HybridBernoulli {
                expected_n,
                p_bound,
            } => ConfiguredSampler::Hb(HybridBernoulli::with_p_bound(policy, expected_n, p_bound)),
            SamplerConfig::HybridReservoir => ConfiguredSampler::Hr(HybridReservoir::new(policy)),
        }
    }
}

impl<T: SampleValue> Sampler<T> for ConfiguredSampler<T> {
    fn observe<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) {
        match self {
            ConfiguredSampler::Hb(s) => s.observe(value, rng),
            ConfiguredSampler::Hr(s) => s.observe(value, rng),
        }
    }

    /// Dispatch the whole chunk with one `match`, so the phase-aware bulk
    /// paths in HB/HR run without a per-element enum branch.
    fn observe_batch<R: Rng + ?Sized>(&mut self, values: &[T], rng: &mut R) {
        match self {
            ConfiguredSampler::Hb(s) => s.observe_batch(values, rng),
            ConfiguredSampler::Hr(s) => s.observe_batch(values, rng),
        }
    }

    fn observed(&self) -> u64 {
        match self {
            ConfiguredSampler::Hb(s) => s.observed(),
            ConfiguredSampler::Hr(s) => s.observed(),
        }
    }

    fn current_size(&self) -> u64 {
        match self {
            ConfiguredSampler::Hb(s) => s.current_size(),
            ConfiguredSampler::Hr(s) => s.current_size(),
        }
    }

    fn finalize<R: Rng + ?Sized>(self, rng: &mut R) -> Sample<T> {
        match self {
            ConfiguredSampler::Hb(s) => s.finalize(rng),
            ConfiguredSampler::Hr(s) => s.finalize(rng),
        }
    }

    fn stats(&self) -> swh_core::stats::SamplerStats {
        match self {
            ConfiguredSampler::Hb(s) => s.stats(),
            ConfiguredSampler::Hr(s) => s.stats(),
        }
    }

    fn finalize_with_stats<R: Rng + ?Sized>(
        self,
        rng: &mut R,
    ) -> (Sample<T>, swh_core::stats::SamplerStats) {
        match self {
            ConfiguredSampler::Hb(s) => s.finalize_with_stats(rng),
            ConfiguredSampler::Hr(s) => s.finalize_with_stats(rng),
        }
    }
}

/// Element counters flush in batches of this size (a power of two). A
/// relaxed atomic increment per element roughly doubles the cost of the
/// cheap reservoir-phase observe path (~5 ns), while a batched flush is
/// unmeasurable; the counter lags the true count by at most one batch until
/// finalize.
const ELEMENT_FLUSH: u64 = 4096;

/// Cached counter handles shared by the ingestion-side components.
#[derive(Debug, Clone)]
struct IngestMetrics {
    elements: swh_obs::Counter,
    partitions: swh_obs::Counter,
    inclusions: swh_obs::Counter,
}

impl IngestMetrics {
    fn router(registry: &swh_obs::Registry) -> Self {
        Self {
            elements: registry.counter(
                "swh_router_elements_total",
                "Elements routed to parallel samplers",
            ),
            partitions: registry.counter(
                "swh_router_partitions_total",
                "Partition samples finalized by routers",
            ),
            inclusions: registry.counter(
                "swh_router_inclusions_total",
                "Elements included in samples across all routed partitions",
            ),
        }
    }

    fn partitioner(registry: &swh_obs::Registry) -> Self {
        Self {
            elements: registry.counter(
                "swh_partitioner_elements_total",
                "Elements observed by on-the-fly partitioners",
            ),
            partitions: registry.counter(
                "swh_partitioner_partitions_total",
                "Partitions closed by on-the-fly partitioners",
            ),
            inclusions: registry.counter(
                "swh_partitioner_inclusions_total",
                "Elements included in samples across all closed partitions",
            ),
        }
    }
}

/// How a stream is split across parallel samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Element `i` goes to sampler `i mod k`. Deterministic, perfectly
    /// balanced; the resulting partitions interleave the stream.
    RoundRobin,
    /// Element goes to sampler `hash(value) mod k`. Keeps equal values
    /// together (each sub-partition sees a disjoint *value* domain).
    ///
    /// Note: hash splitting makes partitions disjoint *bags* only if the
    /// domains are; equal values always land together, so the partitions
    /// are disjoint as value sets and their union reconstructs the stream.
    ByValueHash,
}

/// Routes one incoming stream over `k` parallel samplers (Fig. 1's
/// `D → D_1, D_2, ...` split) and finalizes them into per-partition
/// samples.
#[derive(Debug)]
pub struct StreamRouter<T: SampleValue> {
    samplers: Vec<ConfiguredSampler<T>>,
    policy_split: SplitPolicy,
    routed: u64,
    /// Elements already flushed into the metrics counter (`routed` minus the
    /// unflushed remainder); lets element-wise and chunked feeding compose.
    flushed: u64,
    hasher: BuildHasherDefault<FxHasher>,
    metrics: IngestMetrics,
}

impl<T: SampleValue> StreamRouter<T> {
    /// Create a router over `k` samplers built from `config`, reporting to
    /// the global [`swh_obs`] registry.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(
        k: usize,
        config: SamplerConfig,
        policy: FootprintPolicy,
        split: SplitPolicy,
    ) -> Self {
        Self::with_registry(swh_obs::global(), k, config, policy, split)
    }

    /// [`StreamRouter::new`] against an explicit metrics registry (tests use
    /// a private registry to assert exact counts).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_registry(
        registry: &swh_obs::Registry,
        k: usize,
        config: SamplerConfig,
        policy: FootprintPolicy,
        split: SplitPolicy,
    ) -> Self {
        assert!(k > 0, "need at least one sampler");
        Self {
            samplers: (0..k).map(|_| config.build(policy)).collect(),
            policy_split: split,
            routed: 0,
            flushed: 0,
            hasher: BuildHasherDefault::default(),
            metrics: IngestMetrics::router(registry),
        }
    }

    /// Number of parallel samplers.
    pub fn fan_out(&self) -> usize {
        self.samplers.len()
    }

    /// Route one arriving element to its sampler.
    pub fn observe<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) {
        let k = self.samplers.len();
        let idx = match self.policy_split {
            SplitPolicy::RoundRobin => (self.routed % k as u64) as usize,
            SplitPolicy::ByValueHash => (self.hasher.hash_one(&value) % k as u64) as usize,
        };
        self.routed += 1;
        if self.routed - self.flushed >= ELEMENT_FLUSH {
            self.metrics.elements.add(self.routed - self.flushed);
            self.flushed = self.routed;
        }
        self.samplers[idx].observe(value, rng);
    }

    /// Route a chunk of arriving elements: each value is assigned to its
    /// sampler exactly as [`StreamRouter::observe`] would, the per-sampler
    /// shares are then drained with one [`Sampler::observe_batch`] call
    /// each, and metrics flush once for the whole chunk.
    ///
    /// The split (which value lands in which partition) is identical to the
    /// element-wise path, so chunked routing is deterministic for a fixed
    /// chunking. The per-sampler grouping does reorder RNG consumption
    /// relative to interleaved element-wise routing, so the two feeding
    /// styles draw different (equally uniform) samples.
    pub fn observe_chunk<R: Rng + ?Sized>(&mut self, values: &[T], rng: &mut R) {
        let k = self.samplers.len();
        let mut shares: Vec<Vec<T>> = vec![Vec::new(); k];
        for value in values {
            let idx = match self.policy_split {
                SplitPolicy::RoundRobin => (self.routed % k as u64) as usize,
                SplitPolicy::ByValueHash => (self.hasher.hash_one(value) % k as u64) as usize,
            };
            self.routed += 1;
            shares[idx].push(value.clone());
        }
        for (idx, share) in shares.iter().enumerate() {
            if !share.is_empty() {
                self.samplers[idx].observe_batch(share, rng);
            }
        }
        self.metrics.elements.add(self.routed - self.flushed);
        self.flushed = self.routed;
    }

    /// Total elements routed.
    pub fn observed(&self) -> u64 {
        self.routed
    }

    /// Finalize all samplers into per-partition samples (in sampler order).
    pub fn finalize<R: Rng + ?Sized>(self, rng: &mut R) -> Vec<Sample<T>> {
        let metrics = self.metrics;
        metrics.elements.add(self.routed - self.flushed);
        self.samplers
            .into_iter()
            .map(|s| {
                let (sample, stats) = s.finalize_with_stats(rng);
                metrics.partitions.inc();
                metrics.inclusions.add(stats.inclusions);
                sample
            })
            .collect()
    }
}

/// On-the-fly partitioner: finalizes the current partition whenever the
/// sample-to-parent ratio drops to `min_ratio` (§2: "we wait until the ratio
/// of sampled data to observed parent data hits the specified lower bound,
/// at which point we finalize the current data partition (and corresponding
/// sample), and begin a new partition").
///
/// Built on Algorithm HR, whose fixed-size sample makes the ratio monotone
/// within a partition.
#[derive(Debug)]
pub struct RatioBoundedPartitioner<T: SampleValue> {
    policy: FootprintPolicy,
    min_ratio: f64,
    current: HybridReservoir<T>,
    finished: Vec<Sample<T>>,
    /// Elements seen across all partitions (drives batched counter flushes).
    seen: u64,
    /// Elements already flushed into the metrics counter.
    flushed: u64,
    metrics: IngestMetrics,
}

impl<T: SampleValue> RatioBoundedPartitioner<T> {
    /// Create a partitioner that closes a partition once
    /// `sample_size / observed ≤ min_ratio`, reporting to the global
    /// [`swh_obs`] registry.
    ///
    /// # Panics
    /// Panics unless `0 < min_ratio ≤ 1`.
    pub fn new(policy: FootprintPolicy, min_ratio: f64) -> Self {
        Self::with_registry(swh_obs::global(), policy, min_ratio)
    }

    /// [`RatioBoundedPartitioner::new`] against an explicit metrics registry.
    ///
    /// # Panics
    /// Panics unless `0 < min_ratio ≤ 1`.
    pub fn with_registry(
        registry: &swh_obs::Registry,
        policy: FootprintPolicy,
        min_ratio: f64,
    ) -> Self {
        assert!(
            min_ratio > 0.0 && min_ratio <= 1.0,
            "ratio bound must lie in (0, 1], got {min_ratio}"
        );
        Self {
            policy,
            min_ratio,
            current: HybridReservoir::new(policy),
            finished: Vec::new(),
            seen: 0,
            flushed: 0,
            metrics: IngestMetrics::partitioner(registry),
        }
    }

    /// Boundary-checked element feed shared by the element-wise and chunked
    /// paths; metric flushing is the caller's job.
    fn observe_inner<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) {
        self.current.observe(value, rng);
        self.seen += 1;
        let observed = self.current.observed();
        let ratio = self.current.current_size() as f64 / observed as f64;
        if ratio <= self.min_ratio {
            let full = std::mem::replace(&mut self.current, HybridReservoir::new(self.policy));
            let (sample, stats) = full.finalize_with_stats(rng);
            self.metrics.partitions.inc();
            self.metrics.inclusions.add(stats.inclusions);
            self.finished.push(sample);
        }
    }

    /// Feed one arriving element.
    pub fn observe<R: Rng + ?Sized>(&mut self, value: T, rng: &mut R) {
        self.observe_inner(value, rng);
        if self.seen - self.flushed >= ELEMENT_FLUSH {
            self.metrics.elements.add(self.seen - self.flushed);
            self.flushed = self.seen;
        }
    }

    /// Feed a chunk of arriving elements, flushing metrics once for the
    /// whole chunk. The ratio boundary is still checked after every element
    /// (a partition must close at exactly the element that hits the bound),
    /// so this path is byte-identical to feeding the values one by one —
    /// only the metric flush cadence changes.
    pub fn observe_chunk<R: Rng + ?Sized>(&mut self, values: &[T], rng: &mut R) {
        for value in values {
            self.observe_inner(value.clone(), rng);
        }
        self.metrics.elements.add(self.seen - self.flushed);
        self.flushed = self.seen;
    }

    /// Partitions finalized so far.
    pub fn finished(&self) -> &[Sample<T>] {
        &self.finished
    }

    /// End the stream: finalize the in-progress partition (if non-empty)
    /// and return all partition samples in order.
    pub fn finish<R: Rng + ?Sized>(mut self, rng: &mut R) -> Vec<Sample<T>> {
        self.metrics.elements.add(self.seen - self.flushed);
        if self.current.observed() > 0 {
            let (sample, stats) = self.current.finalize_with_stats(rng);
            self.metrics.partitions.inc();
            self.metrics.inclusions.add(stats.inclusions);
            self.finished.push(sample);
        }
        self.finished
    }
}

/// Temporal partitioner: closes the current partition whenever the event
/// time crosses a window boundary (§2's "partition the incoming data stream
/// temporally, e.g., one partition per day"). The complement of
/// [`RatioBoundedPartitioner`]: partitions have fixed time spans and
/// variable sizes, instead of variable spans and bounded sampling ratios.
#[derive(Debug)]
pub struct TimePartitioner<T: SampleValue> {
    policy: FootprintPolicy,
    window: f64,
    /// Exclusive end time of the current window.
    current_end: f64,
    current: HybridReservoir<T>,
    finished: Vec<(u64, Sample<T>)>,
    next_seq: u64,
    /// Elements seen across all windows (drives batched counter flushes).
    seen: u64,
    /// Elements already flushed into the metrics counter.
    flushed: u64,
    metrics: IngestMetrics,
}

impl<T: SampleValue> TimePartitioner<T> {
    /// Partition a timestamped stream into windows of `window` time units
    /// (the first window is `[0, window)`), reporting to the global
    /// [`swh_obs`] registry.
    ///
    /// # Panics
    /// Panics unless `window` is finite and positive.
    pub fn new(policy: FootprintPolicy, window: f64) -> Self {
        Self::with_registry(swh_obs::global(), policy, window)
    }

    /// [`TimePartitioner::new`] against an explicit metrics registry.
    ///
    /// # Panics
    /// Panics unless `window` is finite and positive.
    pub fn with_registry(
        registry: &swh_obs::Registry,
        policy: FootprintPolicy,
        window: f64,
    ) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive"
        );
        Self {
            policy,
            window,
            current_end: window,
            current: HybridReservoir::new(policy),
            finished: Vec::new(),
            next_seq: 0,
            seen: 0,
            flushed: 0,
            metrics: IngestMetrics::partitioner(registry),
        }
    }

    /// Window-advancing element feed shared by the element-wise and chunked
    /// paths; metric flushing is the caller's job.
    fn observe_at_inner<R: Rng + ?Sized>(&mut self, time: f64, value: T, rng: &mut R) {
        assert!(
            time >= self.current_end - self.window,
            "event at t={time} belongs to an already-closed window \
             (current window starts at {})",
            self.current_end - self.window
        );
        while time >= self.current_end {
            self.close_current(rng);
        }
        self.current.observe(value, rng);
        self.seen += 1;
    }

    /// Feed one timestamped element. Timestamps must be non-decreasing.
    ///
    /// # Panics
    /// Panics if `time` lies before the current window (i.e. in a window
    /// that has already been closed).
    pub fn observe_at<R: Rng + ?Sized>(&mut self, time: f64, value: T, rng: &mut R) {
        self.observe_at_inner(time, value, rng);
        if self.seen - self.flushed >= ELEMENT_FLUSH {
            self.metrics.elements.add(self.seen - self.flushed);
            self.flushed = self.seen;
        }
    }

    /// Feed a chunk of timestamped elements (non-decreasing times),
    /// flushing metrics once for the whole chunk. Window boundaries are
    /// still applied per element, so this path is byte-identical to feeding
    /// the events one by one.
    ///
    /// # Panics
    /// Panics if any event lies before the current window.
    pub fn observe_at_chunk<R: Rng + ?Sized>(&mut self, events: &[(f64, T)], rng: &mut R) {
        for (time, value) in events {
            self.observe_at_inner(*time, value.clone(), rng);
        }
        self.metrics.elements.add(self.seen - self.flushed);
        self.flushed = self.seen;
    }

    fn close_current<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let full = std::mem::replace(&mut self.current, HybridReservoir::new(self.policy));
        if full.observed() > 0 {
            let (sample, stats) = full.finalize_with_stats(rng);
            self.metrics.partitions.inc();
            self.metrics.inclusions.add(stats.inclusions);
            self.finished.push((self.next_seq, sample));
        }
        self.next_seq += 1;
        self.current_end += self.window;
    }

    /// Windows closed so far, as `(window_seq, sample)`.
    pub fn finished(&self) -> &[(u64, Sample<T>)] {
        &self.finished
    }

    /// End the stream: close the in-progress window (if non-empty) and
    /// return all `(window_seq, sample)` pairs in order. Empty windows are
    /// skipped but still consume sequence numbers, so `seq` reflects wall
    /// clock.
    pub fn finish<R: Rng + ?Sized>(mut self, rng: &mut R) -> Vec<(u64, Sample<T>)> {
        self.metrics.elements.add(self.seen - self.flushed);
        if self.current.observed() > 0 {
            let (sample, stats) = self.current.finalize_with_stats(rng);
            self.metrics.partitions.inc();
            self.metrics.inclusions.add(stats.inclusions);
            self.finished.push((self.next_seq, sample));
        }
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_rand::seeded_rng;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn time_partitioner_closes_on_boundaries() {
        let mut rng = seeded_rng(30);
        let mut p: TimePartitioner<u64> = TimePartitioner::new(policy(64), 1.0);
        // 10 events in window 0, 5 in window 1, none in window 2, 3 in 3.
        for i in 0..10u64 {
            p.observe_at(0.05 * i as f64, i, &mut rng);
        }
        for i in 0..5u64 {
            p.observe_at(1.1 + 0.1 * i as f64, 100 + i, &mut rng);
        }
        for i in 0..3u64 {
            p.observe_at(3.2 + 0.1 * i as f64, 200 + i, &mut rng);
        }
        let windows = p.finish(&mut rng);
        let seqs: Vec<u64> = windows.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 3], "empty window 2 skipped but numbered");
        assert_eq!(windows[0].1.parent_size(), 10);
        assert_eq!(windows[1].1.parent_size(), 5);
        assert_eq!(windows[2].1.parent_size(), 3);
    }

    #[test]
    fn time_partitioner_respects_footprint() {
        let mut rng = seeded_rng(31);
        let n_f = 16u64;
        let mut p: TimePartitioner<u64> = TimePartitioner::new(policy(n_f), 10.0);
        for i in 0..5_000u64 {
            p.observe_at(i as f64 * 0.001, i, &mut rng);
        }
        let windows = p.finish(&mut rng);
        assert_eq!(windows.len(), 1);
        assert!(windows[0].1.size() <= n_f);
        assert_eq!(windows[0].1.parent_size(), 5_000);
    }

    #[test]
    fn round_robin_balances_exactly() {
        let mut rng = seeded_rng(1);
        let mut router: StreamRouter<u64> = StreamRouter::new(
            4,
            SamplerConfig::HybridReservoir,
            policy(32),
            SplitPolicy::RoundRobin,
        );
        for v in 0..1000u64 {
            router.observe(v, &mut rng);
        }
        let samples = router.finalize(&mut rng);
        assert_eq!(samples.len(), 4);
        for s in &samples {
            assert_eq!(s.parent_size(), 250);
        }
    }

    #[test]
    fn hash_split_keeps_equal_values_together() {
        let mut rng = seeded_rng(2);
        let mut router: StreamRouter<u64> = StreamRouter::new(
            4,
            SamplerConfig::HybridReservoir,
            policy(1024),
            SplitPolicy::ByValueHash,
        );
        for v in (0..4000u64).map(|i| i % 100) {
            router.observe(v, &mut rng);
        }
        let samples = router.finalize(&mut rng);
        // Each distinct value appears in exactly one partition.
        let mut seen = std::collections::HashMap::new();
        for (i, s) in samples.iter().enumerate() {
            for (v, _) in s.histogram().iter() {
                if let Some(prev) = seen.insert(*v, i) {
                    panic!("value {v} in partitions {prev} and {i}");
                }
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn router_samples_union_covers_stream() {
        let mut rng = seeded_rng(3);
        let mut router: StreamRouter<u64> = StreamRouter::new(
            3,
            SamplerConfig::HybridReservoir,
            policy(4096),
            SplitPolicy::RoundRobin,
        );
        for v in 0..3000u64 {
            router.observe(v, &mut rng);
        }
        let samples = router.finalize(&mut rng);
        // Small stream: all samples exhaustive; union = stream.
        let total: u64 = samples.iter().map(Sample::size).sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn hb_config_builds_working_sampler() {
        let mut rng = seeded_rng(4);
        let cfg = SamplerConfig::HybridBernoulli {
            expected_n: 10_000,
            p_bound: 1e-3,
        };
        let mut s: ConfiguredSampler<u64> = cfg.build(policy(128));
        for v in 0..10_000u64 {
            s.observe(v, &mut rng);
        }
        let sample = s.finalize(&mut rng);
        assert!(sample.size() <= 128);
        assert_eq!(sample.parent_size(), 10_000);
    }

    #[test]
    fn ratio_partitioner_closes_partitions_at_bound() {
        let mut rng = seeded_rng(5);
        let n_f = 64u64;
        let min_ratio = 0.25;
        let mut p: RatioBoundedPartitioner<u64> =
            RatioBoundedPartitioner::new(policy(n_f), min_ratio);
        for v in 0..10_000u64 {
            p.observe(v, &mut rng);
        }
        let parts = p.finish(&mut rng);
        assert!(parts.len() > 1, "expected multiple partitions");
        // Every finalized partition respects the ratio bound.
        for s in &parts {
            let ratio = s.size() as f64 / s.parent_size() as f64;
            assert!(
                ratio >= min_ratio - 1e-9,
                "partition ratio {ratio} below bound (size {} parent {})",
                s.size(),
                s.parent_size()
            );
        }
        // Partitions cover the stream exactly.
        let covered: u64 = parts.iter().map(Sample::parent_size).sum();
        assert_eq!(covered, 10_000);
        // Partition size should be ~ n_f / min_ratio = 256 elements.
        let first = parts[0].parent_size();
        assert_eq!(first, (n_f as f64 / min_ratio) as u64);
    }

    #[test]
    fn ratio_partitioner_handles_short_stream() {
        let mut rng = seeded_rng(6);
        let mut p: RatioBoundedPartitioner<u64> = RatioBoundedPartitioner::new(policy(64), 0.25);
        for v in 0..10u64 {
            p.observe(v, &mut rng);
        }
        let parts = p.finish(&mut rng);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].size(), 10);
    }

    #[test]
    #[should_panic(expected = "ratio bound must lie in (0, 1]")]
    fn ratio_partitioner_rejects_bad_ratio() {
        RatioBoundedPartitioner::<u64>::new(policy(8), 0.0);
    }

    #[test]
    fn router_metrics_match_observed_and_finalized_counts() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(7);
        let mut router: StreamRouter<u64> = StreamRouter::with_registry(
            &registry,
            3,
            SamplerConfig::HybridReservoir,
            policy(64),
            SplitPolicy::RoundRobin,
        );
        for v in 0..5_000u64 {
            router.observe(v, &mut rng);
        }
        // Mid-stream the counter lags by at most one flush batch...
        let mid = registry.snapshot().counter("swh_router_elements_total");
        assert!(
            mid <= router.observed() && router.observed() - mid < 4096,
            "mid count {mid}"
        );
        let observed = router.observed();
        let samples = router.finalize(&mut rng);
        // ...and finalize flushes the remainder exactly.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("swh_router_elements_total"), observed);
        assert_eq!(
            snap.counter("swh_router_partitions_total"),
            samples.len() as u64
        );
        // Every finalized sample's rows were counted as inclusions at some
        // point; the counter tracks gross inclusions (pre-eviction), so it
        // bounds the surviving sample sizes from above.
        let surviving: u64 = samples.iter().map(|s| s.size()).sum();
        assert!(
            snap.counter("swh_router_inclusions_total") >= surviving,
            "inclusions {} < surviving rows {surviving}",
            snap.counter("swh_router_inclusions_total")
        );
    }

    #[test]
    fn partitioner_metrics_match_finished_partitions() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(8);
        let mut p: RatioBoundedPartitioner<u64> =
            RatioBoundedPartitioner::with_registry(&registry, policy(64), 0.25);
        for v in 0..2_000u64 {
            p.observe(v, &mut rng);
        }
        let parts = p.finish(&mut rng);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("swh_partitioner_elements_total"), 2_000);
        assert_eq!(
            snap.counter("swh_partitioner_partitions_total"),
            parts.len() as u64
        );
    }

    #[test]
    fn router_chunk_splits_like_element_wise_and_flushes_per_chunk() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(10);
        let mut router: StreamRouter<u64> = StreamRouter::with_registry(
            &registry,
            4,
            SamplerConfig::HybridReservoir,
            policy(4096),
            SplitPolicy::RoundRobin,
        );
        let values: Vec<u64> = (0..1000).collect();
        for chunk in values.chunks(117) {
            router.observe_chunk(chunk, &mut rng);
        }
        // Chunked feeding flushes eagerly: the counter is exact mid-stream.
        assert_eq!(
            registry.snapshot().counter("swh_router_elements_total"),
            1000
        );
        let samples = router.finalize(&mut rng);
        // Round-robin assignment is unchanged by chunking: perfectly
        // balanced partitions, and (with an exhaustive budget) partition j
        // holds exactly the values congruent to j mod 4.
        assert_eq!(samples.len(), 4);
        for (j, s) in samples.iter().enumerate() {
            assert_eq!(s.parent_size(), 250);
            for (v, _) in s.histogram().iter() {
                assert_eq!(*v % 4, j as u64, "value {v} routed to partition {j}");
            }
        }
    }

    #[test]
    fn router_chunk_hash_split_keeps_equal_values_together() {
        let mut rng = seeded_rng(11);
        let mut router: StreamRouter<u64> = StreamRouter::new(
            4,
            SamplerConfig::HybridReservoir,
            policy(1024),
            SplitPolicy::ByValueHash,
        );
        let values: Vec<u64> = (0..4000).map(|i| i % 100).collect();
        for chunk in values.chunks(256) {
            router.observe_chunk(chunk, &mut rng);
        }
        let samples = router.finalize(&mut rng);
        let mut seen = std::collections::HashMap::new();
        for (i, s) in samples.iter().enumerate() {
            for (v, _) in s.histogram().iter() {
                if let Some(prev) = seen.insert(*v, i) {
                    panic!("value {v} in partitions {prev} and {i}");
                }
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn ratio_partitioner_chunk_is_byte_identical_to_element_wise() {
        let values: Vec<u64> = (0..5_000).collect();
        let run = |chunked: bool| {
            let mut rng = seeded_rng(12);
            let mut p: RatioBoundedPartitioner<u64> =
                RatioBoundedPartitioner::new(policy(64), 0.25);
            if chunked {
                for chunk in values.chunks(73) {
                    p.observe_chunk(chunk, &mut rng);
                }
            } else {
                for v in &values {
                    p.observe(*v, &mut rng);
                }
            }
            p.finish(&mut rng)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn time_partitioner_chunk_is_byte_identical_to_element_wise() {
        let events: Vec<(f64, u64)> = (0..2_000u64).map(|i| (i as f64 * 0.01, i)).collect();
        let run = |chunked: bool| {
            let mut rng = seeded_rng(13);
            let mut p: TimePartitioner<u64> = TimePartitioner::new(policy(32), 1.0);
            if chunked {
                for chunk in events.chunks(41) {
                    p.observe_at_chunk(chunk, &mut rng);
                }
            } else {
                for (t, v) in &events {
                    p.observe_at(*t, *v, &mut rng);
                }
            }
            p.finish(&mut rng)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn time_partitioner_metrics_match_windows() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(9);
        let mut p: TimePartitioner<u64> =
            TimePartitioner::with_registry(&registry, policy(64), 10.0);
        for t in 0..95u64 {
            p.observe_at(t as f64, t, &mut rng);
        }
        let windows = p.finish(&mut rng);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("swh_partitioner_elements_total"), 95);
        assert_eq!(
            snap.counter("swh_partitioner_partitions_total"),
            windows.len() as u64
        );
    }
}
