//! The *full-scale* side of Fig. 1: partition data files holding the actual
//! values, which the sample warehouse shadows.
//!
//! The paper assumes a full-scale warehouse exists; this module provides a
//! minimal but real one — append-only partition files with a checksummed
//! header, streaming scans, and partition roll-out — so examples and tests
//! can compare approximate answers (from samples) against exact answers
//! (from scans), and so ingestion can feed both sides from one pass.
//!
//! Layout mirrors [`crate::store::DiskStore`]:
//! `<root>/ds<dataset>/p<stream>_<seq>.vals`, little-endian values through
//! [`ValueCodec`], with a CRC-32 of the payload in the header.

use crate::codec::{crc32, CodecError, ValueCodec};
use crate::durable;
use crate::ids::{DatasetId, PartitionId, PartitionKey};
use crate::store::StoreError;
use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// File magic for full-scale partition files ("SWHV" = values).
const MAGIC: [u8; 4] = *b"SWHV";

/// Directory of full-scale partition data files.
#[derive(Debug, Clone)]
pub struct FullStore {
    root: PathBuf,
}

impl FullStore {
    /// Open (creating if needed) a full store rooted at `root`, removing
    /// any temp files orphaned by a crash mid-write. Opening must not race
    /// writers on the same root.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        durable::sweep_orphan_tmp(&root)?;
        Ok(Self { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_path(&self, key: PartitionKey) -> PathBuf {
        self.root.join(format!("ds{}", key.dataset.0)).join(format!(
            "p{}_{}.vals",
            key.partition.stream, key.partition.seq
        ))
    }

    /// Write one partition's values (replacing any previous file). Returns
    /// the number of values written.
    pub fn write_partition<T: ValueCodec, I: IntoIterator<Item = T>>(
        &self,
        key: PartitionKey,
        values: I,
    ) -> Result<u64, StoreError> {
        let path = self.file_path(key);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        // Encode the payload first so the header can carry count + CRC.
        let mut payload = Vec::new();
        let mut count = 0u64;
        for v in values {
            v.encode_value(&mut payload);
            count += 1;
        }
        let mut file = Vec::with_capacity(16 + payload.len());
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&count.to_le_bytes());
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        durable::atomic_write(&path, &file)?;
        swh_obs::journal::record(
            swh_obs::journal::EventKind::StoreWrite,
            0,
            0,
            count,
            file.len() as u64,
        );
        Ok(count)
    }

    /// Read one partition's values into memory, verifying the checksum.
    pub fn read_partition<T: ValueCodec>(&self, key: PartitionKey) -> Result<Vec<T>, StoreError> {
        let path = self.file_path(key);
        let mut f = match fs::File::open(&path) {
            Ok(f) => io::BufReader::new(f),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; 16];
        read_header(&mut f, &mut header)?;
        if header[0..4] != MAGIC {
            return Err(StoreError::Codec(CodecError::BadHeader));
        }
        let (count, stored_crc) = header_fields(&header);
        let mut payload = Vec::new();
        f.read_to_end(&mut payload)?;
        if crc32(&payload) != stored_crc {
            return Err(StoreError::Codec(CodecError::ChecksumMismatch));
        }
        let mut buf = payload.as_slice();
        let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            out.push(T::decode_value(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(StoreError::Codec(CodecError::Corrupt("trailing bytes")));
        }
        Ok(out)
    }

    /// Number of values in a stored partition (header read only).
    pub fn partition_len(&self, key: PartitionKey) -> Result<u64, StoreError> {
        let path = self.file_path(key);
        let mut f = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; 16];
        read_header(&mut f, &mut header)?;
        if header[0..4] != MAGIC {
            return Err(StoreError::Codec(CodecError::BadHeader));
        }
        Ok(header_fields(&header).0)
    }

    /// Verify a stored partition without decoding values: header length,
    /// magic, and payload CRC. Type-agnostic, so `fsck` can check
    /// partitions regardless of the value type they hold. (Per-value
    /// framing and the count field are only checkable with a typed
    /// decode; the CRC still covers every payload byte.)
    pub fn verify_partition(&self, key: PartitionKey) -> Result<(), StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        if bytes.len() < 16 {
            return Err(StoreError::Codec(CodecError::UnexpectedEof));
        }
        if bytes[0..4] != MAGIC {
            return Err(StoreError::Codec(CodecError::BadHeader));
        }
        let mut header = [0u8; 16];
        header.copy_from_slice(&bytes[..16]);
        let (_, stored_crc) = header_fields(&header);
        if crc32(&bytes[16..]) != stored_crc {
            return Err(StoreError::Codec(CodecError::ChecksumMismatch));
        }
        Ok(())
    }

    /// Move the (presumed corrupt) partition file into the store's
    /// `quarantine/` subdirectory with a `.reason` sidecar.
    pub fn quarantine(&self, key: PartitionKey, reason: &str) -> Result<(), StoreError> {
        durable::quarantine_file(&self.root, &self.file_path(key), reason)?;
        Ok(())
    }

    /// Delete one partition's data (full-scale roll-out). Returns whether a
    /// file was removed.
    pub fn remove(&self, key: PartitionKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.file_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// List all stored partitions of a dataset, in id order.
    pub fn list(&self, dataset: DatasetId) -> Result<Vec<PartitionKey>, StoreError> {
        let dir = self.root.join(format!("ds{}", dataset.0));
        let mut keys = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(keys),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".vals") else {
                continue;
            };
            let Some(body) = stem.strip_prefix('p') else {
                continue;
            };
            let Some((stream, seq)) = body.split_once('_') else {
                continue;
            };
            if let (Ok(stream), Ok(seq)) = (stream.parse(), seq.parse()) {
                keys.push(PartitionKey {
                    dataset,
                    partition: PartitionId { stream, seq },
                });
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Stream every value of every partition of a dataset (partition
    /// order), materializing one partition at a time. A partition that
    /// fails to read (corruption, concurrent roll-out) surfaces as one
    /// `Err` item and ends the scan, rather than aborting the process.
    pub fn scan_dataset<T: ValueCodec>(
        &self,
        dataset: DatasetId,
    ) -> Result<impl Iterator<Item = Result<T, StoreError>> + '_, StoreError> {
        let keys = self.list(dataset)?;
        let store = self.clone();
        // Drain each buffered partition through an owning iterator so the
        // scan moves values out instead of cloning every element.
        let mut current: std::vec::IntoIter<T> = Vec::new().into_iter();
        let mut key_iter = keys.into_iter();
        let mut failed = false;
        Ok(std::iter::from_fn(move || loop {
            if failed {
                return None;
            }
            if let Some(v) = current.next() {
                return Some(Ok(v));
            }
            let key = key_iter.next()?;
            match store.read_partition(key) {
                Ok(values) => current = values.into_iter(),
                Err(e) => {
                    failed = true;
                    return Some(Err(e));
                }
            }
        }))
    }
}

/// Read the 16-byte header, mapping a short file to
/// [`CodecError::UnexpectedEof`] (truncation is corruption, not an I/O
/// environment problem).
fn read_header<R: Read>(f: &mut R, header: &mut [u8; 16]) -> Result<(), StoreError> {
    f.read_exact(header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Codec(CodecError::UnexpectedEof)
        } else {
            StoreError::Io(e)
        }
    })
}

/// Split a partition-file header into its `(count, crc)` fields.
fn header_fields(header: &[u8; 16]) -> (u64, u32) {
    let mut count_raw = [0u8; 8];
    count_raw.copy_from_slice(&header[4..12]);
    let mut crc_raw = [0u8; 4];
    crc_raw.copy_from_slice(&header[12..16]);
    (u64::from_le_bytes(count_raw), u32::from_le_bytes(crc_raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swh-full-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(ds: u64, seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(ds),
            partition: PartitionId::seq(seq),
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let store = FullStore::open(tmp_root("rt")).unwrap();
        let values: Vec<i64> = (0..10_000).map(|i| i * 3 - 5_000).collect();
        let n = store
            .write_partition(key(1, 0), values.iter().copied())
            .unwrap();
        assert_eq!(n, 10_000);
        assert_eq!(store.partition_len(key(1, 0)).unwrap(), 10_000);
        let back: Vec<i64> = store.read_partition(key(1, 0)).unwrap();
        assert_eq!(back, values);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn scan_dataset_concatenates_partitions() {
        let store = FullStore::open(tmp_root("scan")).unwrap();
        for seq in 0..4u64 {
            store
                .write_partition(key(1, seq), (seq * 100..(seq + 1) * 100).map(|v| v as i64))
                .unwrap();
        }
        let all: Vec<i64> = store
            .scan_dataset(DatasetId(1))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(all.len(), 400);
        assert_eq!(all, (0..400).collect::<Vec<i64>>());
        // A corrupted partition surfaces as an Err item, not a panic.
        let path = store.root().join("ds1").join("p0_2.vals");
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let items: Vec<Result<i64, StoreError>> =
            store.scan_dataset(DatasetId(1)).unwrap().collect();
        assert!(items.iter().any(Result::is_err), "corruption not surfaced");
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let store = FullStore::open(tmp_root("corrupt")).unwrap();
        store
            .write_partition(key(1, 0), (0..100).map(|v| v as i64))
            .unwrap();
        // Flip a byte in the payload.
        let path = store.root().join("ds1").join("p0_0.vals");
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        let err = store.read_partition::<i64>(key(1, 0)).unwrap_err();
        assert!(
            matches!(err, StoreError::Codec(CodecError::ChecksumMismatch)),
            "{err:?}"
        );
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn remove_and_missing() {
        let store = FullStore::open(tmp_root("rm")).unwrap();
        store.write_partition(key(1, 0), [1i64, 2, 3]).unwrap();
        assert!(store.remove(key(1, 0)).unwrap());
        assert!(!store.remove(key(1, 0)).unwrap());
        assert!(matches!(
            store.read_partition::<i64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        assert!(store.list(DatasetId(1)).unwrap().is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }

    /// Crash matrix for the full-scale store: previous or new values,
    /// never torn, zero `.tmp` after reopening.
    #[test]
    fn crash_matrix_previous_or_new_never_torn() {
        use crate::durable::{count_orphan_tmp, fault, CrashPoint};
        let root = tmp_root("crash-matrix");
        let old: Vec<i64> = (0..500).collect();
        let new: Vec<i64> = (500..1500).collect();
        let matrix = [
            (CrashPoint::AfterTempCreate, false),
            (CrashPoint::AfterPartialPayload, false),
            (CrashPoint::AfterPayload, false),
            (CrashPoint::BeforeRename, false),
            (CrashPoint::AfterRename, true),
            (CrashPoint::AfterDirSync, true),
        ];
        for (point, expect_new) in matrix {
            let store = FullStore::open(&root).unwrap();
            store
                .write_partition(key(1, 0), old.iter().copied())
                .unwrap();
            fault::arm(point);
            assert!(
                store
                    .write_partition(key(1, 0), new.iter().copied())
                    .is_err(),
                "{point:?}"
            );
            let store = FullStore::open(&root).unwrap();
            let got: Vec<i64> = store.read_partition(key(1, 0)).unwrap();
            let expect = if expect_new { &new } else { &old };
            assert_eq!(&got, expect, "torn or wrong partition after {point:?}");
            assert_eq!(count_orphan_tmp(&root).unwrap(), 0, "{point:?}");
        }
        fault::disarm();
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn verify_partition_checks_magic_and_crc() {
        let store = FullStore::open(tmp_root("verify")).unwrap();
        store
            .write_partition(key(1, 0), (0..100).map(|v| v as i64))
            .unwrap();
        store.verify_partition(key(1, 0)).unwrap();
        let path = store.root().join("ds1").join("p0_0.vals");
        // Truncate below the header: UnexpectedEof.
        let good = fs::read(&path).unwrap();
        fs::write(&path, &good[..8]).unwrap();
        assert!(matches!(
            store.verify_partition(key(1, 0)),
            Err(StoreError::Codec(CodecError::UnexpectedEof))
        ));
        // Flip a payload byte: ChecksumMismatch.
        let mut flipped = good.clone();
        flipped[20] ^= 0x04;
        fs::write(&path, flipped).unwrap();
        assert!(matches!(
            store.verify_partition(key(1, 0)),
            Err(StoreError::Codec(CodecError::ChecksumMismatch))
        ));
        // Quarantine moves it aside with a reason.
        store.quarantine(key(1, 0), "checksum mismatch").unwrap();
        assert!(!path.exists());
        assert!(store
            .root()
            .join("quarantine")
            .join("ds1")
            .join("p0_0.vals")
            .exists());
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn empty_partition_roundtrip() {
        let store = FullStore::open(tmp_root("empty")).unwrap();
        store
            .write_partition::<i64, _>(key(1, 0), std::iter::empty())
            .unwrap();
        assert_eq!(store.partition_len(key(1, 0)).unwrap(), 0);
        assert!(store.read_partition::<i64>(key(1, 0)).unwrap().is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }
}
