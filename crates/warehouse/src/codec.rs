//! Compact binary serialization of samples.
//!
//! Requirement 4 of §2 asks for compact stored samples; the on-disk form
//! mirrors the in-memory compact histogram: a header with provenance and
//! policy, followed by `(value, count)` pairs where singleton counts are
//! folded into a tag byte (the paper's "pairs of the form (v, 1) are
//! represented simply by a single number"). Values are encoded through the
//! [`ValueCodec`] trait; integers use fixed-width little-endian, strings and
//! byte arrays are length-prefixed.
//!
//! No external serialization crate is used — the format is a few dozen
//! lines and keeping it here avoids a heavyweight dependency for what is,
//! by design, a flat structure.
//!
//! **Version 2** appends a lineage section after the value pairs: the
//! sample's [`LineageEvent`] history as tagged records, followed by a
//! `u32` byte-length footer so the section can be located from the tail of
//! the payload *without* decoding the (typed) pairs — `fsck` and other
//! type-agnostic readers rely on this. Version-1 files decode unchanged
//! (empty lineage).
//!
//! **Version 3** adds the realized sample size (total element count) to the
//! header, after the distinct-value count. Together with the lineage
//! section this lets [`summary_of_bytes`] report everything the derived
//! sample-quality gauges need (effective sampling rate, purge depth, merge
//! fan-in) without decoding a single typed value — so read-only consumers
//! like `swh serve` never misread (let alone quarantine) a store whose
//! element type they cannot name. Version-1 and -2 files decode unchanged.

use swh_core::footprint::FootprintPolicy;
use swh_core::histogram::CompactHistogram;
use swh_core::lineage::{push_capped, LineageEvent, PurgeKind};
use swh_core::sample::{Sample, SampleKind};
use swh_core::value::SampleValue;

/// Format magic: "SWHS" (Sample WareHouse Sample).
const MAGIC: [u8; 4] = *b"SWHS";
/// Format version written by [`encode_sample`].
const VERSION: u8 = 3;
/// Oldest format version still decodable.
const MIN_VERSION: u8 = 1;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice; the trailer checksum
/// that lets the store detect torn or corrupted sample files.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table generated at first use (256 u32s, cheap and allocation-free).
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended prematurely.
    UnexpectedEof,
    /// Magic bytes or version did not match.
    BadHeader,
    /// A tag or enum discriminant was invalid.
    Corrupt(&'static str),
    /// The trailer checksum did not match the payload.
    ChecksumMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadHeader => write!(f, "bad magic or unsupported version"),
            CodecError::Corrupt(what) => write!(f, "corrupt field: {what}"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Values that can be persisted in the sample store.
pub trait ValueCodec: SampleValue {
    /// Append the encoded form of `self` to `out`.
    fn encode_value(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn decode_value(buf: &mut &[u8]) -> Result<Self, CodecError>;
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if buf.len() < n {
        return Err(CodecError::UnexpectedEof);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, CodecError> {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(take(buf, 8)?);
    Ok(u64::from_le_bytes(raw))
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(buf: &mut &[u8]) -> Result<f64, CodecError> {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(take(buf, 8)?);
    Ok(f64::from_le_bytes(raw))
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl ValueCodec for $t {
            fn encode_value(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_value(buf: &mut &[u8]) -> Result<Self, CodecError> {
                let mut raw = [0u8; std::mem::size_of::<$t>()];
                raw.copy_from_slice(take(buf, std::mem::size_of::<$t>())?);
                Ok(<$t>::from_le_bytes(raw))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ValueCodec for String {
    fn encode_value(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_value(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = get_u64(buf)? as usize;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("utf8 string"))
    }
}

impl ValueCodec for Vec<u8> {
    fn encode_value(&self, out: &mut Vec<u8>) {
        put_u64(out, self.len() as u64);
        out.extend_from_slice(self);
    }

    fn decode_value(buf: &mut &[u8]) -> Result<Self, CodecError> {
        let len = get_u64(buf)? as usize;
        Ok(take(buf, len)?.to_vec())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, CodecError> {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(take(buf, 4)?);
    Ok(u32::from_le_bytes(raw))
}

/// Serialize one lineage event as its tag byte plus payload.
fn encode_lineage_event(out: &mut Vec<u8>, ev: &LineageEvent) {
    out.push(ev.tag());
    match ev {
        LineageEvent::Ingested { elements } => put_u64(out, *elements),
        LineageEvent::PhaseTransition {
            from,
            to,
            q,
            footprint_slots,
        } => {
            out.push(*from);
            out.push(*to);
            put_f64(out, *q);
            put_u64(out, *footprint_slots);
        }
        LineageEvent::Purge { kind, survivors } => {
            out.push(kind.code());
            put_u64(out, *survivors);
        }
        LineageEvent::Merge { fan_in, split_l } => {
            put_u32(out, *fan_in);
            put_u64(out, *split_l);
        }
        LineageEvent::StoreWrite | LineageEvent::StoreRecovery | LineageEvent::StoreQuarantine => {}
        LineageEvent::Truncated { dropped } => put_u64(out, *dropped),
    }
}

/// Parse a whole lineage section (`u32` count + tagged events), requiring
/// the slice to be exactly consumed.
fn decode_lineage(mut bytes: &[u8]) -> Result<Vec<LineageEvent>, CodecError> {
    let buf = &mut bytes;
    let count = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let ev = match take(buf, 1)?[0] {
            1 => LineageEvent::Ingested {
                elements: get_u64(buf)?,
            },
            2 => {
                let from = take(buf, 1)?[0];
                let to = take(buf, 1)?[0];
                let q = get_f64(buf)?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(CodecError::Corrupt("lineage transition rate"));
                }
                LineageEvent::PhaseTransition {
                    from,
                    to,
                    q,
                    footprint_slots: get_u64(buf)?,
                }
            }
            3 => {
                let kind = PurgeKind::from_code(take(buf, 1)?[0])
                    .ok_or(CodecError::Corrupt("lineage purge kind"))?;
                LineageEvent::Purge {
                    kind,
                    survivors: get_u64(buf)?,
                }
            }
            4 => LineageEvent::Merge {
                fan_in: get_u32(buf)?,
                split_l: get_u64(buf)?,
            },
            5 => LineageEvent::StoreWrite,
            6 => LineageEvent::StoreRecovery,
            7 => LineageEvent::StoreQuarantine,
            8 => LineageEvent::Truncated {
                dropped: get_u64(buf)?,
            },
            _ => return Err(CodecError::Corrupt("lineage event tag")),
        };
        out.push(ev);
    }
    if !buf.is_empty() {
        return Err(CodecError::Corrupt("lineage trailing bytes"));
    }
    Ok(out)
}

/// Split a v2 payload (magic/version already consumed is NOT assumed; this
/// takes the whole CRC-stripped payload) into the body and the lineage
/// section using the trailing byte-length footer.
fn split_lineage_section(payload: &[u8]) -> Result<(&[u8], &[u8]), CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    let (rest, footer) = payload.split_at(payload.len() - 4);
    let mut raw = [0u8; 4];
    raw.copy_from_slice(footer);
    let lin_len = u32::from_le_bytes(raw) as usize;
    if rest.len() < lin_len {
        return Err(CodecError::Corrupt("lineage section length"));
    }
    Ok(rest.split_at(rest.len() - lin_len))
}

/// Encode a sample into its compact binary form.
pub fn encode_sample<T: ValueCodec>(sample: &Sample<T>) -> Vec<u8> {
    encode_sample_with_events(sample, &[])
}

/// [`encode_sample`], appending `extra` lineage events (e.g. the store's
/// `StoreWrite` record) to the serialized history without mutating the
/// in-memory sample. The combined history honors the lineage cap.
pub fn encode_sample_with_events<T: ValueCodec>(
    sample: &Sample<T>,
    extra: &[LineageEvent],
) -> Vec<u8> {
    let hist = sample.histogram();
    let mut out = Vec::with_capacity(32 + hist.distinct() * 12);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    // Provenance.
    match sample.kind() {
        SampleKind::Exhaustive => out.push(1),
        SampleKind::Bernoulli { q, p_bound } => {
            out.push(2);
            put_f64(&mut out, q);
            put_f64(&mut out, p_bound);
        }
        SampleKind::Reservoir => out.push(3),
        SampleKind::Concise { q } => {
            out.push(4);
            put_f64(&mut out, q);
        }
    }
    put_u64(&mut out, sample.parent_size());
    put_u64(&mut out, sample.policy().f_bytes());
    put_u64(&mut out, sample.policy().value_bytes());
    put_u64(&mut out, hist.distinct() as u64);
    // v3: realized sample size, so type-agnostic readers can derive the
    // effective sampling rate without walking the typed pairs.
    put_u64(&mut out, hist.total());
    // Pairs in sorted order (canonical form). Tag 0 = singleton, 1 = pair.
    for (v, c) in hist.sorted_pairs() {
        if c == 1 {
            out.push(0);
            v.encode_value(&mut out);
        } else {
            out.push(1);
            v.encode_value(&mut out);
            put_u64(&mut out, c);
        }
    }
    // Lineage section (v2): count + tagged events, then a byte-length
    // footer so type-agnostic readers can find the section from the tail.
    let mut lineage = sample.lineage().to_vec();
    for ev in extra {
        push_capped(&mut lineage, *ev);
    }
    let section_start = out.len();
    put_u32(&mut out, lineage.len() as u32);
    for ev in &lineage {
        encode_lineage_event(&mut out, ev);
    }
    let section_len = (out.len() - section_start) as u32;
    put_u32(&mut out, section_len);
    // Integrity trailer over everything so far.
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verify a stored sample's integrity without decoding values: length,
/// CRC-32 trailer, magic, and version. Type-agnostic — `fsck` uses this to
/// check `.swhs` files regardless of the element type they hold (a typed
/// [`decode_sample`] would falsely reject, say, a `String`-valued store
/// checked as `i64`).
pub fn verify_sample_bytes(input: &[u8]) -> Result<(), CodecError> {
    lineage_of_bytes(input).map(|_| ())
}

/// Extract the lineage section of a stored sample without decoding values:
/// checks length, CRC-32 trailer, magic, and version, then parses the
/// lineage section located through the v2 tail footer. Type-agnostic —
/// `fsck` uses this to validate `.swhs` files regardless of element type.
/// Version-1 files yield an empty lineage.
pub fn lineage_of_bytes(input: &[u8]) -> Result<Vec<LineageEvent>, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    let (payload, trailer) = input.split_at(input.len() - 4);
    let mut raw = [0u8; 4];
    raw.copy_from_slice(trailer);
    if crc32(payload) != u32::from_le_bytes(raw) {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut buf = payload;
    let buf = &mut buf;
    if take(buf, 4)? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let version = take(buf, 1)?[0];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::BadHeader);
    }
    if version < 2 {
        return Ok(Vec::new());
    }
    let (_, lineage_bytes) = split_lineage_section(buf)?;
    decode_lineage(lineage_bytes)
}

/// Type-agnostic summary of a stored sample: the header fields every
/// element type shares, plus the lineage section. This is everything the
/// derived sample-quality gauges need, read without touching a typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSummary {
    /// Number of elements in the partition the sample was drawn from.
    pub parent_size: u64,
    /// Realized sample size; `None` for pre-v3 files, whose headers did
    /// not record it.
    pub total: Option<u64>,
    /// The sample's recorded history (empty for v1 files).
    pub lineage: Vec<LineageEvent>,
}

/// Read a [`SampleSummary`] from a stored sample without decoding values:
/// checks length, CRC-32 trailer, magic, and version, then parses only the
/// shared header fields and the lineage section. `swh serve` uses this to
/// compute the sample-quality gauges for stores of *any* element type —
/// a typed [`decode_sample`] would falsely reject, say, a `String`-valued
/// store read as `i64`.
pub fn summary_of_bytes(input: &[u8]) -> Result<SampleSummary, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    let (payload, trailer) = input.split_at(input.len() - 4);
    let mut raw = [0u8; 4];
    raw.copy_from_slice(trailer);
    if crc32(payload) != u32::from_le_bytes(raw) {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut buf = payload;
    let buf = &mut buf;
    if take(buf, 4)? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let version = take(buf, 1)?[0];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::BadHeader);
    }
    let lineage = if version >= 2 {
        let (body, lineage_bytes) = split_lineage_section(buf)?;
        let lineage = decode_lineage(lineage_bytes)?;
        *buf = body;
        lineage
    } else {
        Vec::new()
    };
    // Skip the provenance tag and its kind-specific payload.
    match take(buf, 1)?[0] {
        1 | 3 => {}
        2 => {
            take(buf, 16)?; // q + p_bound
        }
        4 => {
            take(buf, 8)?; // q
        }
        _ => return Err(CodecError::Corrupt("sample kind tag")),
    }
    let parent_size = get_u64(buf)?;
    let _f_bytes = get_u64(buf)?;
    let _value_bytes = get_u64(buf)?;
    let _distinct = get_u64(buf)?;
    let total = if version >= 3 {
        Some(get_u64(buf)?)
    } else {
        None
    };
    Ok(SampleSummary {
        parent_size,
        total,
        lineage,
    })
}

/// Decode a sample from its binary form, verifying the CRC-32 trailer.
pub fn decode_sample<T: ValueCodec>(input: &[u8]) -> Result<Sample<T>, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    let (payload, trailer) = input.split_at(input.len() - 4);
    let mut raw = [0u8; 4];
    raw.copy_from_slice(trailer);
    let stored = u32::from_le_bytes(raw);
    if crc32(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut buf = payload;
    let buf = &mut buf;
    if take(buf, 4)? != MAGIC {
        return Err(CodecError::BadHeader);
    }
    let version = take(buf, 1)?[0];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::BadHeader);
    }
    // v2: peel the lineage section off the tail before the typed pairs
    // walk, so the "trailing bytes" check below still covers the body.
    let lineage = if version >= 2 {
        let (body, lineage_bytes) = split_lineage_section(buf)?;
        let lineage = decode_lineage(lineage_bytes)?;
        *buf = body;
        lineage
    } else {
        Vec::new()
    };
    let kind = match take(buf, 1)?[0] {
        1 => SampleKind::Exhaustive,
        2 => {
            let q = get_f64(buf)?;
            let p_bound = get_f64(buf)?;
            if !(0.0..=1.0).contains(&q) {
                return Err(CodecError::Corrupt("bernoulli rate"));
            }
            SampleKind::Bernoulli { q, p_bound }
        }
        3 => SampleKind::Reservoir,
        4 => {
            let q = get_f64(buf)?;
            SampleKind::Concise { q }
        }
        _ => return Err(CodecError::Corrupt("sample kind tag")),
    };
    let parent_size = get_u64(buf)?;
    let f_bytes = get_u64(buf)?;
    let value_bytes = get_u64(buf)?;
    if value_bytes == 0 || f_bytes / value_bytes < 2 {
        return Err(CodecError::Corrupt("footprint policy"));
    }
    let policy = FootprintPolicy::new(f_bytes, value_bytes);
    let distinct = get_u64(buf)?;
    let total = if version >= 3 {
        Some(get_u64(buf)?)
    } else {
        None
    };
    let mut hist = CompactHistogram::new();
    for _ in 0..distinct {
        let tag = take(buf, 1)?[0];
        let v = T::decode_value(buf)?;
        let c = match tag {
            0 => 1,
            1 => {
                let c = get_u64(buf)?;
                if c < 2 {
                    return Err(CodecError::Corrupt("pair count < 2"));
                }
                c
            }
            _ => return Err(CodecError::Corrupt("pair tag")),
        };
        hist.insert_count(v, c);
    }
    if !buf.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes"));
    }
    if hist.total() > parent_size {
        return Err(CodecError::Corrupt("sample larger than parent"));
    }
    if total.is_some_and(|t| t != hist.total()) {
        return Err(CodecError::Corrupt("header sample total"));
    }
    Ok(Sample::from_parts_unchecked(hist, kind, parent_size, policy).with_lineage(lineage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::hybrid_bernoulli::HybridBernoulli;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn policy() -> FootprintPolicy {
        FootprintPolicy::with_value_budget(64)
    }

    #[test]
    fn roundtrip_reservoir_sample() {
        let mut rng = seeded_rng(1);
        let s = HybridReservoir::new(policy()).sample_batch(0..10_000u64, &mut rng);
        let bytes = encode_sample(&s);
        let back: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.kind(), s.kind());
        assert_eq!(back.parent_size(), s.parent_size());
        assert_eq!(back.policy(), s.policy());
    }

    #[test]
    fn roundtrip_bernoulli_sample() {
        let mut rng = seeded_rng(2);
        let s = HybridBernoulli::new(policy(), 10_000).sample_batch(0..10_000u64, &mut rng);
        let back: Sample<u64> = decode_sample(&encode_sample(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.kind(), s.kind());
    }

    #[test]
    fn roundtrip_exhaustive_with_duplicates() {
        let mut rng = seeded_rng(3);
        let values: Vec<u64> = (0..1000u64).map(|i| i % 7).collect();
        let s = HybridReservoir::new(policy()).sample_batch(values, &mut rng);
        assert_eq!(s.kind(), SampleKind::Exhaustive);
        let back: Sample<u64> = decode_sample(&encode_sample(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.size(), 1000);
    }

    #[test]
    fn roundtrip_string_values() {
        let mut rng = seeded_rng(4);
        let values: Vec<String> = (0..500).map(|i| format!("city-{}", i % 40)).collect();
        let s = HybridReservoir::new(policy()).sample_batch(values, &mut rng);
        let back: Sample<String> = decode_sample(&encode_sample(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn singleton_encoding_is_compact() {
        let mut rng = seeded_rng(5);
        // All distinct: every entry a singleton — 9 bytes each (tag + u64).
        let s = HybridReservoir::new(policy()).sample_batch(0..50u64, &mut rng);
        let bytes = encode_sample(&s);
        // header: 4 magic + 1 version + 1 kind + 8*5 fields = 46 bytes;
        // lineage section: u32 count + one Ingested event (tag + u64) and
        // its u32 byte-length footer; plus the 4-byte CRC trailer.
        assert_eq!(s.lineage().len(), 1);
        assert_eq!(bytes.len(), 46 + 50 * 9 + (4 + 9) + 4 + 4);
    }

    #[test]
    fn golden_format_snapshot() {
        // Lock the on-disk format: if this test fails, the format changed
        // and VERSION must be bumped with a migration path.
        let mut hist = CompactHistogram::new();
        hist.insert_count(5u64, 3); // pair
        hist.insert_count(9u64, 1); // singleton
        let s = Sample::from_parts(
            hist,
            SampleKind::Bernoulli {
                q: 0.5,
                p_bound: 0.001,
            },
            100,
            FootprintPolicy::new(64, 8),
        );
        let bytes = encode_sample(&s);
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let expected = concat!(
            "53574853",         // "SWHS"
            "03",               // version 3
            "02",               // kind: Bernoulli
            "000000000000e03f", // q = 0.5 (f64 LE)
            "fca9f1d24d62503f", // p = 0.001 (f64 LE)
            "6400000000000000", // parent_size = 100
            "4000000000000000", // F = 64 bytes
            "0800000000000000", // value width = 8
            "0200000000000000", // 2 distinct values
            "0400000000000000", // sample total = 4 elements
            "01",               // tag: pair
            "0500000000000000", // value 5
            "0300000000000000", // count 3
            "00",               // tag: singleton
            "0900000000000000", // value 9
            "00000000",         // lineage: 0 events
            "04000000",         // lineage section is 4 bytes long
        );
        assert!(hex.starts_with(expected), "format drifted:\n  {hex}");
        // Trailer = CRC32 of everything before it.
        assert_eq!(bytes.len(), expected.len() / 2 + 4);
    }

    #[test]
    fn version1_files_still_decode() {
        // A v1 file is the v2 layout minus the lineage section; stores
        // written before the lineage format must keep loading.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SWHS");
        bytes.push(1); // version 1
        bytes.push(3); // kind: Reservoir
        for field in [40u64, 64, 8, 2] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        for v in [7u64, 11] {
            bytes.push(0); // singleton
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        verify_sample_bytes(&bytes).unwrap();
        assert_eq!(lineage_of_bytes(&bytes).unwrap(), vec![]);
        let s: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(s.size(), 2);
        assert_eq!(s.kind(), SampleKind::Reservoir);
        assert!(s.lineage().is_empty());
    }

    #[test]
    fn version2_files_still_decode() {
        // A v2 file is the v3 layout minus the header sample total; stores
        // written before the summary format must keep loading, with the
        // summary reporting the total as unknown.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SWHS");
        bytes.push(2); // version 2
        bytes.push(3); // kind: Reservoir
        for field in [40u64, 64, 8, 2] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        for v in [7u64, 11] {
            bytes.push(0); // singleton
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        // Lineage section: one StoreWrite event, 5-byte body + footer.
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(5); // tag: StoreWrite
        bytes.extend_from_slice(&5u32.to_le_bytes());
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        verify_sample_bytes(&bytes).unwrap();
        assert_eq!(
            lineage_of_bytes(&bytes).unwrap(),
            vec![LineageEvent::StoreWrite]
        );
        let s: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(s.size(), 2);
        assert_eq!(s.lineage(), &[LineageEvent::StoreWrite]);
        let summary = summary_of_bytes(&bytes).unwrap();
        assert_eq!(summary.parent_size, 40);
        assert_eq!(summary.total, None);
        assert_eq!(summary.lineage, vec![LineageEvent::StoreWrite]);
    }

    #[test]
    fn summary_of_bytes_is_type_agnostic() {
        let mut rng = seeded_rng(13);
        let values: Vec<String> = (0..300).map(|i| format!("city-{}", i % 40)).collect();
        let s = HybridReservoir::new(policy()).sample_batch(values, &mut rng);
        let bytes = encode_sample_with_events(&s, &[LineageEvent::StoreWrite]);
        let summary = summary_of_bytes(&bytes).unwrap();
        assert_eq!(summary.parent_size, 300);
        assert_eq!(summary.total, Some(s.size()));
        assert_eq!(summary.lineage.last(), Some(&LineageEvent::StoreWrite));
        // Corruption classes map to the same errors as decode_sample.
        assert_eq!(
            summary_of_bytes(&bytes[..2]).unwrap_err(),
            CodecError::UnexpectedEof
        );
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(
            summary_of_bytes(&flipped).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn header_total_mismatch_is_rejected() {
        let mut rng = seeded_rng(14);
        let s = HybridReservoir::new(policy()).sample_batch(0..100u64, &mut rng);
        let good = encode_sample(&s);
        // The total sits right after the distinct count: bump it and
        // re-seal the CRC so only the cross-check can catch it.
        let total_at = 4 + 1 + 1 + 8 * 4; // magic, version, kind, 4 fields
        let mut bad = good.clone();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bad[total_at..total_at + 8]);
        let bumped = u64::from_le_bytes(raw) + 1;
        bad[total_at..total_at + 8].copy_from_slice(&bumped.to_le_bytes());
        let payload_len = bad.len() - 4;
        let crc = crc32(&bad[..payload_len]);
        bad[payload_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_sample::<u64>(&bad).unwrap_err(),
            CodecError::Corrupt("header sample total")
        );
    }

    #[test]
    fn lineage_roundtrips_through_the_codec() {
        let mut rng = seeded_rng(10);
        // Force HB through its Bernoulli phase so the lineage is rich.
        let s = HybridBernoulli::new(policy(), 50_000).sample_batch(0..50_000u64, &mut rng);
        assert!(
            s.lineage().len() >= 2,
            "expected transition + ingest, got {:?}",
            s.lineage()
        );
        let bytes = encode_sample(&s);
        let back: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(back.lineage(), s.lineage());
        // The type-agnostic reader sees the same history.
        assert_eq!(lineage_of_bytes(&bytes).unwrap(), s.lineage());
    }

    #[test]
    fn encode_with_extra_events_appends_without_mutating() {
        let mut rng = seeded_rng(11);
        let s = HybridReservoir::new(policy()).sample_batch(0..500u64, &mut rng);
        let before = s.lineage().to_vec();
        let bytes = encode_sample_with_events(&s, &[LineageEvent::StoreWrite]);
        assert_eq!(s.lineage(), &before[..], "input sample mutated");
        let back: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(back.lineage().last(), Some(&LineageEvent::StoreWrite));
        assert_eq!(&back.lineage()[..before.len()], &before[..]);
    }

    #[test]
    fn corrupt_lineage_section_is_rejected() {
        let mut rng = seeded_rng(12);
        let s = HybridReservoir::new(policy()).sample_batch(0..100u64, &mut rng);
        let good = encode_sample(&s);
        // Rewrite the lineage event tag to an invalid value and re-seal the
        // CRC so only the lineage walk can catch it.
        let payload_len = good.len() - 4;
        let footer_at = payload_len - 4;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&good[footer_at..payload_len]);
        let lin_len = u32::from_le_bytes(raw) as usize;
        let tag_at = footer_at - lin_len + 4; // first event tag
        let mut bad = good.clone();
        bad[tag_at] = 0xEE;
        let crc = crc32(&bad[..payload_len]);
        bad[payload_len..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_sample::<u64>(&bad).unwrap_err(),
            CodecError::Corrupt("lineage event tag")
        );
        assert_eq!(
            verify_sample_bytes(&bad).unwrap_err(),
            CodecError::Corrupt("lineage event tag")
        );
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut rng = seeded_rng(6);
        let s = HybridReservoir::new(policy()).sample_batch(0..100u64, &mut rng);
        let bytes = encode_sample(&s);
        for cut in [0usize, 3, 5, 10, bytes.len() - 1] {
            let err = decode_sample::<u64>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::UnexpectedEof
                        | CodecError::BadHeader
                        | CodecError::ChecksumMismatch
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        // Construct a payload with a valid CRC but the wrong magic.
        let mut bytes = b"XXXX...".to_vec();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_sample::<u64>(&bytes).unwrap_err(),
            CodecError::BadHeader
        );
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut rng = seeded_rng(7);
        let s = HybridReservoir::new(policy()).sample_batch(0..100u64, &mut rng);
        let good = encode_sample(&s);
        // Flip one bit anywhere in the payload.
        for pos in [0usize, 10, good.len() / 2, good.len() - 5] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert_eq!(
                decode_sample::<u64>(&bad).unwrap_err(),
                CodecError::ChecksumMismatch,
                "flip at {pos} undetected"
            );
        }
    }

    #[test]
    fn verify_sample_bytes_is_type_agnostic() {
        let mut rng = seeded_rng(9);
        // A String-valued sample passes verification without a type param.
        let values: Vec<String> = (0..200).map(|i| format!("v{i}")).collect();
        let s = HybridReservoir::new(policy()).sample_batch(values, &mut rng);
        let good = encode_sample(&s);
        verify_sample_bytes(&good).unwrap();
        // Corruption classes map to the same errors as decode_sample.
        assert_eq!(
            verify_sample_bytes(&good[..2]).unwrap_err(),
            CodecError::UnexpectedEof
        );
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        assert_eq!(
            verify_sample_bytes(&flipped).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        let mut wrong_magic = b"XXXX...".to_vec();
        let crc = crc32(&wrong_magic);
        wrong_magic.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            verify_sample_bytes(&wrong_magic).unwrap_err(),
            CodecError::BadHeader
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut rng = seeded_rng(8);
        let s = HybridReservoir::new(policy()).sample_batch(0..10u64, &mut rng);
        let mut bytes = encode_sample(&s);
        bytes.push(0xFF);
        // An appended byte shifts the trailer, so the checksum fails.
        assert_eq!(
            decode_sample::<u64>(&bytes).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }
}
