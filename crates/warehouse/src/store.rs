//! Disk-backed sample store.
//!
//! Persists encoded samples (see [`crate::codec`]) under a directory, one
//! file per partition key. The layout is
//! `<root>/ds<dataset>/p<stream>_<seq>.swhs`, human-inspectable and cheap
//! to list. Writes go through [`crate::durable::atomic_write`] (unique temp
//! file, fsync, rename, directory fsync) so a crash never leaves a torn
//! sample behind; [`DiskStore::open`] sweeps any crash-orphaned temp files.

use crate::codec::{
    decode_sample, encode_sample_with_events, summary_of_bytes, verify_sample_bytes, CodecError,
    SampleSummary, ValueCodec,
};
use crate::durable;
use crate::ids::{DatasetId, PartitionId, PartitionKey};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use swh_core::lineage::LineageEvent;
use swh_core::sample::Sample;
use swh_obs::journal::EventKind;
use swh_obs::trace::{Op, Span};

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The stored bytes failed to decode.
    Codec(CodecError),
    /// No sample stored under that key.
    NotFound(PartitionKey),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::NotFound(k) => write!(f, "no stored sample for {k}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// A directory of persisted partition samples.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`, removing any
    /// temp files orphaned by a crash mid-write. Opening must not race
    /// writers on the same root.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        durable::sweep_orphan_tmp(&root)?;
        Ok(Self { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding a dataset's partition files (`<root>/ds<N>`). The
    /// lifecycle compactor writes its tombstone intents beside the partition
    /// files, so the layout is part of the store's public contract.
    pub fn dataset_dir(&self, dataset: DatasetId) -> PathBuf {
        self.root.join(format!("ds{}", dataset.0))
    }

    /// Whether a sample file exists under `key` (no decode, no read).
    pub fn contains(&self, key: PartitionKey) -> bool {
        self.file_path(key).exists()
    }

    fn file_path(&self, key: PartitionKey) -> PathBuf {
        self.dataset_dir(key.dataset).join(format!(
            "p{}_{}.swhs",
            key.partition.stream, key.partition.seq
        ))
    }

    /// Persist a sample under `key`, replacing any previous version. The
    /// stored lineage gains a trailing [`LineageEvent::StoreWrite`] (the
    /// in-memory sample is left untouched).
    pub fn save<T: ValueCodec>(
        &self,
        key: PartitionKey,
        sample: &Sample<T>,
    ) -> Result<(), StoreError> {
        let dir = self.dataset_dir(key.dataset);
        fs::create_dir_all(&dir)?;
        let span = Span::root(Op::StoreWrite);
        let bytes = encode_sample_with_events(sample, &[LineageEvent::StoreWrite]);
        span.event(EventKind::StoreWrite, bytes.len() as u64, 0);
        durable::atomic_write(&self.file_path(key), &bytes)?;
        span.end();
        Ok(())
    }

    /// Load the sample stored under `key`.
    pub fn load<T: ValueCodec>(&self, key: PartitionKey) -> Result<Sample<T>, StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        Ok(decode_sample(&bytes)?)
    }

    /// Verify the stored bytes under `key` without decoding values:
    /// length, CRC trailer, magic, and version. Type-agnostic, so `fsck`
    /// can check stores regardless of the element type they hold.
    pub fn verify(&self, key: PartitionKey) -> Result<(), StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        verify_sample_bytes(&bytes)?;
        Ok(())
    }

    /// Read the lineage record stored under `key` without decoding the
    /// typed value payload (the lineage section sits behind a byte-length
    /// footer, so this works regardless of the element type). `fsck` and
    /// `swh serve` use this to inspect samples they cannot type.
    pub fn lineage(&self, key: PartitionKey) -> Result<Vec<LineageEvent>, StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        Ok(crate::codec::lineage_of_bytes(&bytes)?)
    }

    /// Read the type-agnostic [`SampleSummary`] stored under `key`: header
    /// fields shared by every element type plus the lineage section, never
    /// a typed value. `swh serve` derives the sample-quality gauges from
    /// this, so it works against stores it cannot type.
    pub fn summary(&self, key: PartitionKey) -> Result<SampleSummary, StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        Ok(summary_of_bytes(&bytes)?)
    }

    /// Move the (presumed corrupt) file under `key` into the store's
    /// `quarantine/` subdirectory with a `.reason` sidecar, instead of
    /// deleting it — the bytes stay available for post-mortems.
    pub fn quarantine(&self, key: PartitionKey, reason: &str) -> Result<(), StoreError> {
        durable::quarantine_file(&self.root, &self.file_path(key), reason)?;
        Ok(())
    }

    /// Delete the sample stored under `key` (roll-out). Returns whether a
    /// file was removed.
    pub fn remove(&self, key: PartitionKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.file_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// List all partition keys stored for a dataset, in id order.
    pub fn list(&self, dataset: DatasetId) -> Result<Vec<PartitionKey>, StoreError> {
        let dir = self.dataset_dir(dataset);
        let mut keys = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(keys),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".swhs") else {
                continue;
            };
            let Some(body) = stem.strip_prefix('p') else {
                continue;
            };
            let Some((stream, seq)) = body.split_once('_') else {
                continue;
            };
            if let (Ok(stream), Ok(seq)) = (stream.parse(), seq.parse()) {
                keys.push(PartitionKey {
                    dataset,
                    partition: PartitionId { stream, seq },
                });
            }
        }
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swh-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(ds: u64, seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(ds),
            partition: PartitionId::seq(seq),
        }
    }

    fn sample(range: std::ops::Range<u64>, rng: &mut rand::rngs::SmallRng) -> Sample<u64> {
        HybridReservoir::new(FootprintPolicy::with_value_budget(32)).sample_batch(range, rng)
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = seeded_rng(1);
        let store = DiskStore::open(tmp_root("roundtrip")).unwrap();
        let s = sample(0..5000, &mut rng);
        store.save(key(1, 0), &s).unwrap();
        let back: Sample<u64> = store.load(key(1, 0)).unwrap();
        assert_eq!(back, s);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn load_missing_is_not_found() {
        let store = DiskStore::open(tmp_root("missing")).unwrap();
        assert!(matches!(
            store.load::<u64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn list_returns_sorted_keys() {
        let mut rng = seeded_rng(2);
        let store = DiskStore::open(tmp_root("list")).unwrap();
        for seq in [5u64, 1, 3] {
            store.save(key(2, seq), &sample(0..100, &mut rng)).unwrap();
        }
        let keys = store.list(DatasetId(2)).unwrap();
        let seqs: Vec<u64> = keys.iter().map(|k| k.partition.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5]);
        // Unknown dataset lists empty.
        assert!(store.list(DatasetId(99)).unwrap().is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn remove_rolls_out() {
        let mut rng = seeded_rng(3);
        let store = DiskStore::open(tmp_root("remove")).unwrap();
        store.save(key(1, 0), &sample(0..100, &mut rng)).unwrap();
        assert!(store.remove(key(1, 0)).unwrap());
        assert!(!store.remove(key(1, 0)).unwrap());
        assert!(matches!(
            store.load::<u64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut rng = seeded_rng(4);
        let store = DiskStore::open(tmp_root("overwrite")).unwrap();
        let a = sample(0..100, &mut rng);
        let b = sample(100..300, &mut rng);
        store.save(key(1, 0), &a).unwrap();
        store.save(key(1, 0), &b).unwrap();
        let got: Sample<u64> = store.load(key(1, 0)).unwrap();
        assert_eq!(got, b);
        fs::remove_dir_all(store.root()).unwrap();
    }

    /// The headline crash matrix: for every injected crash point, reopening
    /// the store yields the previous or the new sample — never an error,
    /// never a torn read — and recovery leaves zero `.tmp` files behind.
    #[test]
    fn crash_matrix_previous_or_new_never_torn() {
        use crate::durable::{count_orphan_tmp, fault, CrashPoint};
        let mut rng = seeded_rng(5);
        let root = tmp_root("crash-matrix");
        let old = sample(0..1000, &mut rng);
        let new = sample(1000..3000, &mut rng);
        let matrix = [
            (CrashPoint::AfterTempCreate, false),
            (CrashPoint::AfterPartialPayload, false),
            (CrashPoint::AfterPayload, false),
            (CrashPoint::BeforeRename, false),
            (CrashPoint::AfterRename, true),
            (CrashPoint::AfterDirSync, true),
        ];
        for (point, expect_new) in matrix {
            let store = DiskStore::open(&root).unwrap();
            store.save(key(1, 0), &old).unwrap();
            fault::arm(point);
            assert!(store.save(key(1, 0), &new).is_err(), "{point:?}");
            // Simulated restart: reopen sweeps orphans, then read back.
            let store = DiskStore::open(&root).unwrap();
            let got: Sample<u64> = store.load(key(1, 0)).unwrap();
            let expect = if expect_new { &new } else { &old };
            assert_eq!(&got, expect, "torn or wrong sample after {point:?}");
            assert_eq!(
                count_orphan_tmp(&root).unwrap(),
                0,
                "orphan tmp left after recovery from {point:?}"
            );
        }
        fault::disarm();
        fs::remove_dir_all(&root).unwrap();
    }

    /// A crash before the *first* save of a key must leave the key absent
    /// (NotFound), not a torn file.
    #[test]
    fn crash_on_first_save_leaves_key_absent() {
        use crate::durable::{fault, CrashPoint};
        let mut rng = seeded_rng(6);
        let root = tmp_root("crash-first");
        let store = DiskStore::open(&root).unwrap();
        fault::arm(CrashPoint::AfterPartialPayload);
        assert!(store.save(key(1, 0), &sample(0..500, &mut rng)).is_err());
        let store = DiskStore::open(&root).unwrap();
        assert!(matches!(
            store.load::<u64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        assert_eq!(crate::durable::count_orphan_tmp(&root).unwrap(), 0);
        fault::disarm();
        fs::remove_dir_all(&root).unwrap();
    }

    /// Concurrent saves to the same key no longer tear each other's temp
    /// file: every save succeeds and the survivor is one of the samples.
    #[test]
    fn concurrent_saves_to_one_key_never_tear() {
        let root = tmp_root("concurrent-key");
        let store = DiskStore::open(&root).unwrap();
        let samples: Vec<Sample<u64>> = (0..4u64)
            .map(|i| {
                let mut rng = seeded_rng(100 + i);
                sample(i * 1000..(i + 1) * 1000, &mut rng)
            })
            .collect();
        std::thread::scope(|scope| {
            for s in &samples {
                let store = store.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        store.save(key(7, 0), s).unwrap();
                    }
                });
            }
        });
        let got: Sample<u64> = store.load(key(7, 0)).unwrap();
        assert!(samples.contains(&got), "torn sample survived");
        assert_eq!(crate::durable::count_orphan_tmp(&root).unwrap(), 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn verify_and_quarantine_corrupt_entry() {
        let mut rng = seeded_rng(7);
        let root = tmp_root("verify-quarantine");
        let store = DiskStore::open(&root).unwrap();
        store.save(key(3, 1), &sample(0..200, &mut rng)).unwrap();
        store.verify(key(3, 1)).unwrap();
        // Flip a payload byte: verify reports the checksum mismatch.
        let path = root.join("ds3").join("p0_1.swhs");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, bytes).unwrap();
        let err = store.verify(key(3, 1)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Codec(CodecError::ChecksumMismatch)
        ));
        store.quarantine(key(3, 1), "checksum mismatch").unwrap();
        assert!(!path.exists());
        let qfile = root.join("quarantine").join("ds3").join("p0_1.swhs");
        assert!(qfile.exists());
        let mut reason = qfile.into_os_string();
        reason.push(".reason");
        assert_eq!(
            fs::read_to_string(PathBuf::from(reason)).unwrap(),
            "checksum mismatch"
        );
        // The quarantined entry no longer lists.
        assert!(store.list(DatasetId(3)).unwrap().is_empty());
        fs::remove_dir_all(&root).unwrap();
    }
}
