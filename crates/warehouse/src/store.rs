//! Disk-backed sample store.
//!
//! Persists encoded samples (see [`crate::codec`]) under a directory, one
//! file per partition key. The layout is
//! `<root>/ds<dataset>/p<stream>_<seq>.swhs`, human-inspectable and cheap
//! to list. Writes go through a temp file + rename so a crash never leaves
//! a torn sample behind.

use crate::codec::{decode_sample, encode_sample, CodecError, ValueCodec};
use crate::ids::{DatasetId, PartitionId, PartitionKey};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use swh_core::sample::Sample;

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The stored bytes failed to decode.
    Codec(CodecError),
    /// No sample stored under that key.
    NotFound(PartitionKey),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::NotFound(k) => write!(f, "no stored sample for {k}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// A directory of persisted partition samples.
#[derive(Debug, Clone)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dataset_dir(&self, dataset: DatasetId) -> PathBuf {
        self.root.join(format!("ds{}", dataset.0))
    }

    fn file_path(&self, key: PartitionKey) -> PathBuf {
        self.dataset_dir(key.dataset).join(format!(
            "p{}_{}.swhs",
            key.partition.stream, key.partition.seq
        ))
    }

    /// Persist a sample under `key`, replacing any previous version.
    pub fn save<T: ValueCodec>(
        &self,
        key: PartitionKey,
        sample: &Sample<T>,
    ) -> Result<(), StoreError> {
        let dir = self.dataset_dir(key.dataset);
        fs::create_dir_all(&dir)?;
        let bytes = encode_sample(sample);
        let final_path = self.file_path(key);
        let tmp_path = final_path.with_extension("swhs.tmp");
        {
            let mut f = io::BufWriter::new(fs::File::create(&tmp_path)?);
            f.write_all(&bytes)?;
            f.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(())
    }

    /// Load the sample stored under `key`.
    pub fn load<T: ValueCodec>(&self, key: PartitionKey) -> Result<Sample<T>, StoreError> {
        let path = self.file_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NotFound(key)),
            Err(e) => return Err(e.into()),
        };
        Ok(decode_sample(&bytes)?)
    }

    /// Delete the sample stored under `key` (roll-out). Returns whether a
    /// file was removed.
    pub fn remove(&self, key: PartitionKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.file_path(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// List all partition keys stored for a dataset, in id order.
    pub fn list(&self, dataset: DatasetId) -> Result<Vec<PartitionKey>, StoreError> {
        let dir = self.dataset_dir(dataset);
        let mut keys = Vec::new();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(keys),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(".swhs") else {
                continue;
            };
            let Some(body) = stem.strip_prefix('p') else {
                continue;
            };
            let Some((stream, seq)) = body.split_once('_') else {
                continue;
            };
            if let (Ok(stream), Ok(seq)) = (stream.parse(), seq.parse()) {
                keys.push(PartitionKey {
                    dataset,
                    partition: PartitionId { stream, seq },
                });
            }
        }
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swh-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(ds: u64, seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(ds),
            partition: PartitionId::seq(seq),
        }
    }

    fn sample(range: std::ops::Range<u64>, rng: &mut rand::rngs::SmallRng) -> Sample<u64> {
        HybridReservoir::new(FootprintPolicy::with_value_budget(32)).sample_batch(range, rng)
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = seeded_rng(1);
        let store = DiskStore::open(tmp_root("roundtrip")).unwrap();
        let s = sample(0..5000, &mut rng);
        store.save(key(1, 0), &s).unwrap();
        let back: Sample<u64> = store.load(key(1, 0)).unwrap();
        assert_eq!(back, s);
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn load_missing_is_not_found() {
        let store = DiskStore::open(tmp_root("missing")).unwrap();
        assert!(matches!(
            store.load::<u64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn list_returns_sorted_keys() {
        let mut rng = seeded_rng(2);
        let store = DiskStore::open(tmp_root("list")).unwrap();
        for seq in [5u64, 1, 3] {
            store.save(key(2, seq), &sample(0..100, &mut rng)).unwrap();
        }
        let keys = store.list(DatasetId(2)).unwrap();
        let seqs: Vec<u64> = keys.iter().map(|k| k.partition.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5]);
        // Unknown dataset lists empty.
        assert!(store.list(DatasetId(99)).unwrap().is_empty());
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn remove_rolls_out() {
        let mut rng = seeded_rng(3);
        let store = DiskStore::open(tmp_root("remove")).unwrap();
        store.save(key(1, 0), &sample(0..100, &mut rng)).unwrap();
        assert!(store.remove(key(1, 0)).unwrap());
        assert!(!store.remove(key(1, 0)).unwrap());
        assert!(matches!(
            store.load::<u64>(key(1, 0)),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut rng = seeded_rng(4);
        let store = DiskStore::open(tmp_root("overwrite")).unwrap();
        let a = sample(0..100, &mut rng);
        let b = sample(100..300, &mut rng);
        store.save(key(1, 0), &a).unwrap();
        store.save(key(1, 0), &b).unwrap();
        let got: Sample<u64> = store.load(key(1, 0)).unwrap();
        assert_eq!(got, b);
        fs::remove_dir_all(store.root()).unwrap();
    }
}
