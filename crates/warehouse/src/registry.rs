//! Human-readable dataset names.
//!
//! The paper's warehouse "comprises many data sets" — a column of a
//! relational table, a leaf node of an XML schema — which tooling wants to
//! address by name (`orders.amount`), not by numeric id. The registry maps
//! names to [`DatasetId`]s, persists as a plain text file next to the
//! stores (`names.tsv`: `id<TAB>name` per line), and hands out fresh ids.

use crate::ids::DatasetId;
use crate::store::StoreError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{PoisonError, RwLock};

/// Bidirectional name ↔ id map with optional file persistence.
#[derive(Debug)]
pub struct DatasetRegistry {
    inner: RwLock<Inner>,
    path: Option<PathBuf>,
}

#[derive(Debug, Default)]
struct Inner {
    by_name: BTreeMap<String, DatasetId>,
    by_id: BTreeMap<DatasetId, String>,
    next_id: u64,
}

impl DatasetRegistry {
    /// In-memory registry (no persistence).
    pub fn in_memory() -> Self {
        Self {
            inner: RwLock::new(Inner::default()),
            path: None,
        }
    }

    /// Open a registry persisted at `dir/names.tsv`, loading existing
    /// entries.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir.as_ref())?;
        // Remove only this registry's crash-orphaned temp files. The
        // directory may be a live store root, so a recursive sweep here
        // could race in-flight sample writers.
        crate::durable::sweep_tmp_with_prefix(dir.as_ref(), "names.tsv.")?;
        let path = dir.as_ref().join("names.tsv");
        let mut inner = Inner::default();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for (lineno, line) in text.lines().enumerate() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some((id, name)) = line.split_once('\t') else {
                        return Err(StoreError::Codec(crate::codec::CodecError::Corrupt(
                            "registry line missing tab",
                        )));
                    };
                    let id: u64 = id.parse().map_err(|_| {
                        StoreError::Codec(crate::codec::CodecError::Corrupt("registry id"))
                    })?;
                    let _ = lineno;
                    inner.by_name.insert(name.to_string(), DatasetId(id));
                    inner.by_id.insert(DatasetId(id), name.to_string());
                    inner.next_id = inner.next_id.max(id + 1);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Self {
            inner: RwLock::new(inner),
            path: Some(path),
        })
    }

    fn persist(&self, inner: &Inner) -> Result<(), StoreError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut text = String::new();
        for (id, name) in &inner.by_id {
            text.push_str(&format!("{}\t{}\n", id.0, name));
        }
        crate::durable::atomic_write(path, text.as_bytes())?;
        Ok(())
    }

    /// Resolve a name, registering it with a fresh id if unknown.
    ///
    /// # Panics
    /// Panics if `name` contains a tab or newline (unrepresentable in the
    /// persistent form).
    pub fn resolve_or_create(&self, name: &str) -> Result<DatasetId, StoreError> {
        assert!(
            !name.contains('\t') && !name.contains('\n') && !name.is_empty(),
            "dataset names must be non-empty and tab/newline-free"
        );
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = inner.by_name.get(name) {
            return Ok(id);
        }
        let id = DatasetId(inner.next_id);
        inner.next_id += 1;
        inner.by_name.insert(name.to_string(), id);
        inner.by_id.insert(id, name.to_string());
        self.persist(&inner)?;
        Ok(id)
    }

    /// Look a name up without creating it.
    pub fn lookup(&self, name: &str) -> Option<DatasetId> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_name
            .get(name)
            .copied()
    }

    /// Reverse lookup.
    pub fn name_of(&self, id: DatasetId) -> Option<String> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_id
            .get(&id)
            .cloned()
    }

    /// All `(id, name)` pairs in id order.
    pub fn entries(&self) -> Vec<(DatasetId, String)> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .by_id
            .iter()
            .map(|(id, n)| (*id, n.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swh-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn resolve_is_idempotent() {
        let reg = DatasetRegistry::in_memory();
        let a = reg.resolve_or_create("orders.amount").unwrap();
        let b = reg.resolve_or_create("orders.amount").unwrap();
        assert_eq!(a, b);
        let c = reg.resolve_or_create("orders.zip").unwrap();
        assert_ne!(a, c);
        assert_eq!(reg.name_of(a).as_deref(), Some("orders.amount"));
        assert_eq!(reg.lookup("orders.zip"), Some(c));
        assert_eq!(reg.lookup("nope"), None);
    }

    #[test]
    fn persists_and_reloads() {
        let dir = tmp_dir("persist");
        let (a, b);
        {
            let reg = DatasetRegistry::open(&dir).unwrap();
            a = reg.resolve_or_create("alpha").unwrap();
            b = reg.resolve_or_create("beta").unwrap();
        }
        let reg = DatasetRegistry::open(&dir).unwrap();
        assert_eq!(reg.lookup("alpha"), Some(a));
        assert_eq!(reg.lookup("beta"), Some(b));
        // New ids continue after the persisted maximum.
        let c = reg.resolve_or_create("gamma").unwrap();
        assert!(c.0 > b.0);
        assert_eq!(reg.entries().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Registry snapshot crash matrix: a crash at any point leaves the
    /// previous or the new file on disk (never torn), and reopening sweeps
    /// the orphaned temp file.
    #[test]
    fn crash_matrix_snapshot_previous_or_new() {
        use crate::durable::{count_orphan_tmp, fault, CrashPoint};
        let dir = tmp_dir("crash");
        std::fs::create_dir_all(&dir).unwrap();
        let matrix = [
            (CrashPoint::AfterTempCreate, false),
            (CrashPoint::AfterPartialPayload, false),
            (CrashPoint::AfterPayload, false),
            (CrashPoint::BeforeRename, false),
            (CrashPoint::AfterRename, true),
            (CrashPoint::AfterDirSync, true),
        ];
        for (point, expect_new) in matrix {
            let _ = std::fs::remove_file(dir.join("names.tsv"));
            {
                let reg = DatasetRegistry::open(&dir).unwrap();
                reg.resolve_or_create("alpha").unwrap();
                fault::arm(point);
                assert!(reg.resolve_or_create("beta").is_err(), "{point:?}");
                fault::disarm();
            }
            let reg = DatasetRegistry::open(&dir).unwrap();
            assert!(reg.lookup("alpha").is_some(), "{point:?}");
            assert_eq!(
                reg.lookup("beta").is_some(),
                expect_new,
                "torn or wrong registry after {point:?}"
            );
            assert_eq!(count_orphan_tmp(&dir).unwrap(), 0, "{point:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let dir = tmp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("names.tsv"), "no-tab-here\n").unwrap();
        assert!(DatasetRegistry::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "tab/newline-free")]
    fn rejects_tab_in_name() {
        DatasetRegistry::in_memory()
            .resolve_or_create("a\tb")
            .unwrap();
    }
}
