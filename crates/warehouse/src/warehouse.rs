//! The [`SampleWarehouse`] facade: Fig. 1 of the paper as one object.

use crate::catalog::{Catalog, CatalogError};
use crate::codec::ValueCodec;
use crate::ids::{DatasetId, PartitionId, PartitionKey};
use crate::ingest::SamplerConfig;
use crate::parallel::sample_partitions_parallel;
use crate::store::{DiskStore, StoreError};
use rand::Rng;
use swh_core::footprint::FootprintPolicy;
use swh_core::lineage;
use swh_core::sample::Sample;
use swh_core::sampler::Sampler;
use swh_core::value::SampleValue;
use swh_obs::trace::{Op, Span};

/// Which algorithm the warehouse runs at ingestion time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Algorithm HB: needs the (expected) partition size at ingestion.
    HybridBernoulli,
    /// Algorithm HR: size-oblivious.
    HybridReservoir,
}

/// Errors from warehouse operations.
#[derive(Debug)]
pub enum WarehouseError {
    /// Catalog-level failure (unknown/duplicate partitions, merge failure).
    Catalog(CatalogError),
    /// Persistence failure.
    Store(StoreError),
    /// Algorithm HB was selected but no expected partition size was given.
    MissingExpectedSize,
}

impl std::fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarehouseError::Catalog(e) => write!(f, "{e}"),
            WarehouseError::Store(e) => write!(f, "{e}"),
            WarehouseError::MissingExpectedSize => {
                write!(
                    f,
                    "Algorithm HB requires the expected partition size a priori"
                )
            }
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<CatalogError> for WarehouseError {
    fn from(e: CatalogError) -> Self {
        WarehouseError::Catalog(e)
    }
}

impl From<StoreError> for WarehouseError {
    fn from(e: StoreError) -> Self {
        WarehouseError::Store(e)
    }
}

/// Outcome of [`SampleWarehouse::load_dataset`]: corrupt entries are
/// quarantined (not fatal), so a load reports what happened per class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Partition samples decoded and rolled into the catalog.
    pub loaded: usize,
    /// Corrupt entries moved into the store's `quarantine/` directory.
    pub quarantined: usize,
    /// Entries skipped because the partition was already cataloged.
    pub skipped_duplicates: usize,
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} loaded, {} quarantined, {} duplicate(s) skipped",
            self.loaded, self.quarantined, self.skipped_duplicates
        )
    }
}

/// A sample data warehouse shadowing a full-scale warehouse: per-partition
/// uniform samples, rolled in/out, merged on demand.
#[derive(Debug)]
pub struct SampleWarehouse<T: SampleValue> {
    catalog: Catalog<T>,
    policy: FootprintPolicy,
    algorithm: Algorithm,
    /// Exceedance probability used for HB rates and merge rate derivation.
    p_bound: f64,
}

impl<T: SampleValue> SampleWarehouse<T> {
    /// Create a warehouse sampling with the given algorithm and footprint
    /// bound. `p_bound` is the HB exceedance probability (the paper's
    /// experiments default to `0.001`); it also parameterizes merges.
    pub fn new(policy: FootprintPolicy, algorithm: Algorithm, p_bound: f64) -> Self {
        assert!(p_bound > 0.0 && p_bound < 1.0, "p_bound must lie in (0,1)");
        Self {
            catalog: Catalog::new(),
            policy,
            algorithm,
            p_bound,
        }
    }

    /// The footprint policy partitions are sampled under.
    pub fn policy(&self) -> FootprintPolicy {
        self.policy
    }

    /// Direct access to the catalog (e.g. for sliding-window maintenance).
    pub fn catalog(&self) -> &Catalog<T> {
        &self.catalog
    }

    fn sampler_config(&self, expected_n: Option<u64>) -> Result<SamplerConfig, WarehouseError> {
        match self.algorithm {
            Algorithm::HybridBernoulli => expected_n
                .map(|n| SamplerConfig::HybridBernoulli {
                    expected_n: n,
                    p_bound: self.p_bound,
                })
                .ok_or(WarehouseError::MissingExpectedSize),
            Algorithm::HybridReservoir => Ok(SamplerConfig::HybridReservoir),
        }
    }

    /// Sample one partition's values and roll the sample in.
    ///
    /// `expected_n` is required for Algorithm HB (the a priori partition
    /// size); HR ignores it.
    pub fn ingest_partition<R: Rng + ?Sized, I: IntoIterator<Item = T>>(
        &self,
        key: PartitionKey,
        values: I,
        expected_n: Option<u64>,
        rng: &mut R,
    ) -> Result<(), WarehouseError> {
        let config = self.sampler_config(expected_n)?;
        let mut sampler = config.build::<T>(self.policy);
        for v in values {
            sampler.observe(v, rng);
        }
        let sample = sampler.finalize(rng);
        self.catalog.roll_in(key, sample)?;
        Ok(())
    }

    /// Sample many partitions in parallel and roll them in as partitions
    /// `start_seq, start_seq + 1, ...` of stream 0.
    ///
    /// `expected_n` applies per partition (HB only).
    pub fn ingest_partitions_parallel<I>(
        &self,
        dataset: DatasetId,
        partitions: Vec<I>,
        expected_n: Option<u64>,
        threads: usize,
        seed: u64,
        start_seq: u64,
    ) -> Result<(), WarehouseError>
    where
        I: Iterator<Item = T> + Send,
    {
        let config = self.sampler_config(expected_n)?;
        let policy = self.policy;
        let samples = sample_partitions_parallel(
            partitions,
            move |_| config.build::<T>(policy),
            threads,
            seed,
        );
        for (i, sample) in samples.into_iter().enumerate() {
            self.catalog.roll_in(
                PartitionKey {
                    dataset,
                    partition: PartitionId::seq(start_seq + i as u64),
                },
                sample,
            )?;
        }
        Ok(())
    }

    /// Roll a partition sample out of the warehouse, returning it.
    pub fn roll_out(&self, key: PartitionKey) -> Result<Sample<T>, WarehouseError> {
        Ok(self.catalog.roll_out(key)?.sample)
    }

    /// Uniform sample of the union of the selected partitions.
    pub fn query_union<R: Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        select: impl FnMut(PartitionId) -> bool,
        rng: &mut R,
    ) -> Result<Sample<T>, WarehouseError> {
        Ok(self
            .catalog
            .union_sample(dataset, select, self.p_bound, rng)?)
    }

    /// Uniform sample of the entire data set (all partitions).
    pub fn query_all<R: Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        rng: &mut R,
    ) -> Result<Sample<T>, WarehouseError> {
        self.query_union(dataset, |_| true, rng)
    }
}

impl<T: ValueCodec> SampleWarehouse<T> {
    /// Persist every cataloged partition sample to a disk store.
    pub fn persist_all(&self, store: &DiskStore) -> Result<usize, WarehouseError> {
        let mut written = 0;
        for dataset in self.catalog.datasets() {
            for partition in self.catalog.partitions(dataset)? {
                let key = PartitionKey { dataset, partition };
                let sample = self.catalog.get(key)?;
                store.save(key, &sample)?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Load all stored partitions of a dataset into the catalog.
    ///
    /// A corrupt entry (bad magic, CRC mismatch, truncation) is moved into
    /// the store's `quarantine/` directory with a `.reason` sidecar and
    /// counted in the report instead of aborting the whole load; I/O
    /// failures and catalog errors other than duplicates remain fatal.
    pub fn load_dataset(
        &self,
        store: &DiskStore,
        dataset: DatasetId,
    ) -> Result<LoadReport, WarehouseError> {
        let _span = Span::root(Op::Load);
        let mut report = LoadReport::default();
        let mut sampled = 0u64;
        let mut parents = 0u64;
        let mut purge_depth = 0u64;
        let mut fan_in = 0u64;
        for key in store.list(dataset)? {
            match store.load::<T>(key) {
                Ok(sample) => {
                    sampled += sample.size();
                    parents += sample.parent_size();
                    purge_depth = purge_depth.max(lineage::purge_depth(sample.lineage()));
                    fan_in = fan_in.max(lineage::max_merge_fan_in(sample.lineage()));
                    match self.catalog.roll_in(key, sample) {
                        Ok(()) => report.loaded += 1,
                        Err(CatalogError::DuplicatePartition(_)) => report.skipped_duplicates += 1,
                        Err(e) => return Err(e.into()),
                    }
                }
                Err(StoreError::Codec(e)) => {
                    store.quarantine(key, &e.to_string())?;
                    report.quarantined += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
        if report.loaded > 0 {
            publish_sample_quality(sampled, parents, purge_depth, fan_in);
        }
        Ok(report)
    }
}

/// Outcome of [`publish_dataset_quality`]: how many stored samples fed the
/// gauges and how many were unreadable (and left untouched on disk).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityReport {
    /// Stored samples whose summary fed the gauges.
    pub summarized: usize,
    /// Files whose bytes could not be summarized (corrupt or foreign);
    /// they are skipped, never quarantined — the caller is read-only.
    pub skipped: usize,
}

/// Compute and publish the derived sample-quality gauges for a dataset
/// straight from the stored bytes, without decoding a single typed value:
/// parent and sample sizes come from the codec header, purge depth and
/// merge fan-in from the lineage section. Read-only observers (`swh serve`)
/// use this instead of a typed [`SampleWarehouse::load_dataset`], which
/// would falsely reject — and quarantine — stores of another element type.
/// Unreadable files are skipped and counted, never relocated.
pub fn publish_dataset_quality(
    store: &DiskStore,
    dataset: DatasetId,
) -> Result<QualityReport, WarehouseError> {
    let mut report = QualityReport::default();
    let mut sampled = 0u64;
    let mut parents = 0u64;
    let mut purge_depth = 0u64;
    let mut fan_in = 0u64;
    for key in store.list(dataset)? {
        match store.summary(key) {
            Ok(summary) => {
                report.summarized += 1;
                // Pre-v3 files do not record the realized size; leave them
                // out of the rate ratio so it stays consistent.
                if let Some(total) = summary.total {
                    sampled += total;
                    parents += summary.parent_size;
                }
                purge_depth = purge_depth.max(lineage::purge_depth(&summary.lineage));
                fan_in = fan_in.max(lineage::max_merge_fan_in(&summary.lineage));
            }
            Err(StoreError::Codec(_)) | Err(StoreError::NotFound(_)) => report.skipped += 1,
            Err(e) => return Err(e.into()),
        }
    }
    if report.summarized > 0 {
        publish_sample_quality(sampled, parents, purge_depth, fan_in);
    }
    Ok(report)
}

/// Publish the derived sample-quality gauges computed from loaded samples
/// and their lineage. The effective sampling rate is a ratio, and gauges
/// are integers — it is published in parts per million.
fn publish_sample_quality(sampled: u64, parents: u64, purge_depth: u64, fan_in: u64) {
    let g = swh_obs::global();
    let rate_ppm = if parents > 0 {
        ((sampled as f64 / parents as f64) * 1_000_000.0).round() as i64
    } else {
        0
    };
    g.gauge(
        "swh_sample_effective_rate_ppm",
        "Effective sampling rate of the last loaded dataset, parts per million",
    )
    .set(rate_ppm);
    g.gauge(
        "swh_sample_purge_depth",
        "Deepest lineage purge chain among the last loaded dataset's samples",
    )
    .set(purge_depth as i64);
    g.gauge(
        "swh_sample_merge_fan_in",
        "Largest lineage merge fan-in among the last loaded dataset's samples",
    )
    .set(fan_in as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_rand::seeded_rng;

    fn wh(n_f: u64, alg: Algorithm) -> SampleWarehouse<u64> {
        SampleWarehouse::new(FootprintPolicy::with_value_budget(n_f), alg, 1e-3)
    }

    fn key(seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(1),
            partition: PartitionId::seq(seq),
        }
    }

    #[test]
    fn ingest_and_query_roundtrip_hr() {
        let mut rng = seeded_rng(1);
        let w = wh(64, Algorithm::HybridReservoir);
        for day in 0..7u64 {
            w.ingest_partition(key(day), day * 1000..(day + 1) * 1000, None, &mut rng)
                .unwrap();
        }
        let s = w.query_all(DatasetId(1), &mut rng).unwrap();
        assert_eq!(s.parent_size(), 7000);
        assert_eq!(s.size(), 64);
    }

    #[test]
    fn ingest_hb_requires_expected_size() {
        let mut rng = seeded_rng(2);
        let w = wh(64, Algorithm::HybridBernoulli);
        let err = w
            .ingest_partition(key(0), 0..1000u64, None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, WarehouseError::MissingExpectedSize));
        w.ingest_partition(key(0), 0..1000u64, Some(1000), &mut rng)
            .unwrap();
        let s = w.query_all(DatasetId(1), &mut rng).unwrap();
        assert!(s.size() <= 64);
    }

    #[test]
    fn parallel_ingest_rolls_in_all_partitions() {
        let mut rng = seeded_rng(3);
        let w = wh(32, Algorithm::HybridReservoir);
        let parts: Vec<_> = (0..8u64).map(|p| p * 500..(p + 1) * 500).collect();
        w.ingest_partitions_parallel(DatasetId(1), parts, None, 4, 99, 0)
            .unwrap();
        assert_eq!(w.catalog().len(), 8);
        let s = w.query_all(DatasetId(1), &mut rng).unwrap();
        assert_eq!(s.parent_size(), 4000);
    }

    #[test]
    fn roll_out_removes_from_queries() {
        let mut rng = seeded_rng(4);
        let w = wh(32, Algorithm::HybridReservoir);
        w.ingest_partition(key(0), 0..1000u64, None, &mut rng)
            .unwrap();
        w.ingest_partition(key(1), 1000..2000u64, None, &mut rng)
            .unwrap();
        let out = w.roll_out(key(0)).unwrap();
        assert_eq!(out.parent_size(), 1000);
        let s = w.query_all(DatasetId(1), &mut rng).unwrap();
        assert_eq!(s.parent_size(), 1000);
    }

    #[test]
    fn persist_and_reload() {
        let mut rng = seeded_rng(5);
        let dir = std::env::temp_dir().join(format!("swh-wh-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();

        let w = wh(32, Algorithm::HybridReservoir);
        for day in 0..4u64 {
            w.ingest_partition(key(day), day * 100..(day + 1) * 100, None, &mut rng)
                .unwrap();
        }
        assert_eq!(w.persist_all(&store).unwrap(), 4);

        let w2 = wh(32, Algorithm::HybridReservoir);
        let report = w2.load_dataset(&store, DatasetId(1)).unwrap();
        assert_eq!(report.loaded, 4);
        assert_eq!(report.quarantined, 0);
        // Every partition sample must round-trip exactly.
        for day in 0..4u64 {
            assert_eq!(
                w.catalog().get(key(day)).unwrap(),
                w2.catalog().get(key(day)).unwrap(),
                "partition {day} changed across persistence"
            );
        }
        // Queries against the reloaded warehouse are drawn from the same
        // distribution (merge randomness may consume the RNG differently
        // because hash-map iteration order is not part of the format).
        let b = w2.query_all(DatasetId(1), &mut seeded_rng(7)).unwrap();
        assert_eq!(b.parent_size(), 400);
        assert_eq!(b.size(), 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dataset_quarantines_corrupt_entries() {
        let mut rng = seeded_rng(6);
        let dir = std::env::temp_dir().join(format!("swh-wh-quar-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();

        let w = wh(32, Algorithm::HybridReservoir);
        for day in 0..4u64 {
            w.ingest_partition(key(day), day * 100..(day + 1) * 100, None, &mut rng)
                .unwrap();
        }
        w.persist_all(&store).unwrap();
        // Corrupt one stored sample (payload bit flip).
        let bad = dir.join("ds1").join("p0_2.swhs");
        let mut bytes = std::fs::read(&bad).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&bad, bytes).unwrap();

        let w2 = wh(32, Algorithm::HybridReservoir);
        let report = w2.load_dataset(&store, DatasetId(1)).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(report.quarantined, 1);
        assert_eq!(w2.catalog().len(), 3);
        // The corrupt file moved aside with its reason.
        assert!(!bad.exists());
        let qfile = dir.join("quarantine").join("ds1").join("p0_2.swhs");
        assert!(qfile.exists());
        let mut reason = qfile.into_os_string();
        reason.push(".reason");
        assert_eq!(
            std::fs::read_to_string(std::path::PathBuf::from(reason)).unwrap(),
            "checksum mismatch"
        );
        // Loading again skips the already-cataloged partitions.
        let again = w2.load_dataset(&store, DatasetId(1)).unwrap();
        assert_eq!(again.loaded, 0);
        assert_eq!(again.skipped_duplicates, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
