//! Parallel partition sampling on scoped worker threads.
//!
//! "We would like to be able to parallelize the sampling of the initial
//! batch to minimize ingestion time" (§2). Partitions are distributed over
//! a bounded pool of worker threads; each worker samples its partitions
//! independently with its own deterministic RNG, and results are returned
//! in partition order so downstream merges are reproducible.

use swh_core::sample::Sample;
use swh_core::sampler::Sampler;
use swh_core::value::SampleValue;
use swh_rand::seeded_rng;

/// Sample many partitions concurrently.
///
/// * `partitions` — one value-iterator per partition (consumed).
/// * `make_sampler` — builds a fresh sampler for a partition, given the
///   partition index; called on the worker thread.
/// * `threads` — number of worker threads (capped at the partition count).
/// * `seed` — base RNG seed; partition `i` samples with seed `seed + i`.
///
/// Returns the finalized samples in partition order.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn sample_partitions_parallel<T, I, S, F>(
    partitions: Vec<I>,
    make_sampler: F,
    threads: usize,
    seed: u64,
) -> Vec<Sample<T>>
where
    T: SampleValue,
    I: Iterator<Item = T> + Send,
    S: Sampler<T>,
    F: Fn(usize) -> S + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = partitions.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    // Work queue: (index, iterator), protected by a mutex; results slotted
    // by index.
    let queue = parking_lot::Mutex::new(
        partitions.into_iter().enumerate().collect::<Vec<(usize, I)>>(),
    );
    let results: Vec<parking_lot::Mutex<Option<Sample<T>>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let make_sampler = &make_sampler;
    let queue = &queue;
    let results = &results;
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let item = queue.lock().pop();
                let Some((idx, stream)) = item else { break };
                let mut rng = seeded_rng(seed.wrapping_add(idx as u64));
                let mut sampler = make_sampler(idx);
                for v in stream {
                    sampler.observe(v, &mut rng);
                }
                *results[idx].lock() = Some(sampler.finalize(&mut rng));
            });
        }
    })
    .expect("worker thread panicked");
    results
        .iter()
        .map(|slot| slot.lock().take().expect("every partition produced a sample"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sample::SampleKind;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn parallel_matches_partition_structure() {
        let parts: Vec<_> = (0..16u64).map(|p| p * 1000..(p + 1) * 1000).collect();
        let samples = sample_partitions_parallel(
            parts,
            |_| HybridReservoir::<u64>::new(policy(64)),
            4,
            42,
        );
        assert_eq!(samples.len(), 16);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.parent_size(), 1000, "partition {i}");
            assert_eq!(s.size(), 64);
            assert_eq!(s.kind(), SampleKind::Reservoir);
            // Values must come from the right slice.
            for (v, _) in s.histogram().iter() {
                let lo = i as u64 * 1000;
                assert!((lo..lo + 1000).contains(v));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || -> Vec<std::ops::Range<u64>> {
            (0..8u64).map(|p| p * 100..(p + 1) * 100).collect()
        };
        let a = sample_partitions_parallel(
            make(),
            |_| HybridReservoir::<u64>::new(policy(16)),
            4,
            7,
        );
        let b = sample_partitions_parallel(
            make(),
            |_| HybridReservoir::<u64>::new(policy(16)),
            2, // different thread count must not change results
            7,
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn more_threads_than_partitions() {
        let parts: Vec<_> = (0..2u64).map(|p| p * 10..(p + 1) * 10).collect();
        let samples = sample_partitions_parallel(
            parts,
            |_| HybridReservoir::<u64>::new(policy(16)),
            64,
            1,
        );
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn empty_partition_list() {
        let samples = sample_partitions_parallel(
            Vec::<std::ops::Range<u64>>::new(),
            |_| HybridReservoir::<u64>::new(policy(16)),
            4,
            1,
        );
        assert!(samples.is_empty());
    }
}
