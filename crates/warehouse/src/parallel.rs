//! Parallel partition sampling on scoped worker threads.
//!
//! "We would like to be able to parallelize the sampling of the initial
//! batch to minimize ingestion time" (§2). Partitions are distributed over
//! a bounded pool of worker threads; each worker samples its partitions
//! independently with its own deterministic RNG, and results are returned
//! in partition order so downstream merges are reproducible.
//!
//! Every run publishes worker utilization into the process-wide `swh-obs`
//! registry: per-worker busy time (`swh_parallel_worker_busy_ns`), the
//! number of partitions drained from the shared queue, total elements
//! observed, and the purge work reported by each partition's sampler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use swh_core::sample::Sample;
use swh_core::sampler::Sampler;
use swh_core::stats::SamplerStats;
use swh_core::value::SampleValue;
use swh_obs::{Registry, Stopwatch};
use swh_rand::seeded_rng;

/// Workers buffer their partition streams into chunks of this size and feed
/// them to [`Sampler::observe_batch`]; byte-identity of batches makes the
/// chunk size invisible in the results.
const WORKER_CHUNK: usize = 4096;

/// Sample many partitions concurrently, publishing worker metrics to the
/// global [`swh_obs`] registry.
///
/// * `partitions` — one value-iterator per partition (consumed).
/// * `make_sampler` — builds a fresh sampler for a partition, given the
///   partition index; called on the worker thread.
/// * `threads` — number of worker threads (capped at the partition count).
/// * `seed` — base RNG seed; partition `i` samples with seed `seed + i`.
///
/// Returns the finalized samples in partition order. Results depend only on
/// `(partitions, seed)` — never on `threads` — because every partition gets
/// its own RNG stream.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics.
pub fn sample_partitions_parallel<T, I, S, F>(
    partitions: Vec<I>,
    make_sampler: F,
    threads: usize,
    seed: u64,
) -> Vec<Sample<T>>
where
    T: SampleValue,
    I: Iterator<Item = T> + Send,
    S: Sampler<T>,
    F: Fn(usize) -> S + Sync,
{
    sample_partitions_parallel_in(swh_obs::global(), partitions, make_sampler, threads, seed)
}

/// [`sample_partitions_parallel`] against an explicit metrics registry
/// (tests use a private registry to assert exact counts).
// swh-analyze: hot -- the worker loop inside is the parallel-ingest inner loop
pub fn sample_partitions_parallel_in<T, I, S, F>(
    registry: &Registry,
    partitions: Vec<I>,
    make_sampler: F,
    threads: usize,
    seed: u64,
) -> Vec<Sample<T>>
where
    T: SampleValue,
    I: Iterator<Item = T> + Send,
    S: Sampler<T>,
    F: Fn(usize) -> S + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let n = partitions.len();
    if n == 0 {
        // swh-analyze: allow(blocking-in-hot-path) -- empty-input early exit; Vec::new does not allocate
        return Vec::new();
    }
    let _span = swh_obs::trace::Span::root(swh_obs::trace::Op::Ingest);
    let threads = threads.min(n);
    let worker_busy = registry.histogram(
        "swh_parallel_worker_busy_ns",
        "Busy wall-clock nanoseconds per parallel-ingest worker",
    );
    let partitions_total = registry.counter(
        "swh_parallel_partitions_total",
        "Partitions drained from the parallel-ingest work queue",
    );
    let elements_total = registry.counter(
        "swh_parallel_elements_total",
        "Data elements observed by parallel-ingest workers",
    );
    let purges_total = registry.counter(
        "swh_parallel_purges_total",
        "Sampler purge invocations during parallel ingest",
    );
    let purge_ns_total = registry.counter(
        "swh_parallel_purge_ns_total",
        "Nanoseconds spent inside sampler purges during parallel ingest",
    );
    // Work distribution: an atomic cursor claims partition indices in
    // arrival (FIFO) order — no queue lock, and scheduling matches the
    // order partitions were handed in, unlike the old `Vec::pop` (LIFO)
    // drain. Each slot starts Pending, is Taken by exactly one worker (the
    // cursor hands out each index once), and ends Done; the per-slot mutex
    // is only ever touched by that worker and the collection loop after
    // the scope joins, so it is uncontended — it exists to hand the
    // iterator/result across threads without `unsafe`.
    let slots: Vec<Mutex<Slot<T, I>>> = partitions
        .into_iter()
        .map(|p| Mutex::new(Slot::Pending(p)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let make_sampler = &make_sampler;
    let slots = &slots;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let worker_busy = worker_busy.clone();
            let partitions_total = partitions_total.clone();
            scope.spawn(move || {
                // Worker-level profile scope: per-partition work nests under
                // it (`parallel/worker/partition`), so the worker node's
                // *self* time is exactly the claim/queue overhead — the time
                // this worker spent not sampling.
                let _prof = swh_obs::profile::enabled()
                    .then(|| swh_obs::profile::scope_rooted("parallel/worker"));
                let start = Stopwatch::start();
                let mut drained = 0u64;
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= slots.len() {
                        break;
                    }
                    // Plain data behind the lock: a poisoned mutex (some
                    // worker panicked mid-store) leaves it fully usable, so
                    // recover the guard instead of propagating the panic.
                    let taken = std::mem::replace(
                        // swh-analyze: allow(blocking-in-hot-path) -- uncontended by construction: the cursor hands this slot to exactly one worker
                        &mut *slots[idx].lock().unwrap_or_else(PoisonError::into_inner),
                        Slot::Taken,
                    );
                    let Slot::Pending(stream) = taken else {
                        // The cursor hands out each index exactly once; a
                        // re-claimed slot is a scheduler bug worth a crash.
                        unreachable!("partition {idx} claimed twice");
                    };
                    drained += 1;
                    let _part =
                        swh_obs::profile::enabled().then(|| swh_obs::profile::scope("partition"));
                    let mut rng = seeded_rng(seed.wrapping_add(idx as u64));
                    let mut sampler = make_sampler(idx);
                    // Buffer the stream into chunks and drain each with one
                    // observe_batch call, hitting the samplers' phase-aware
                    // bulk paths. The Sampler contract guarantees batches
                    // are byte-identical to element-wise observation for
                    // any chunking, so results are unchanged.
                    let mut stream = stream;
                    // swh-analyze: allow(blocking-in-hot-path) -- one buffer per partition, reused across every chunk
                    let mut buf: Vec<T> = Vec::with_capacity(WORKER_CHUNK);
                    loop {
                        buf.clear();
                        buf.extend(stream.by_ref().take(WORKER_CHUNK));
                        if buf.is_empty() {
                            break;
                        }
                        sampler.observe_batch(&buf, &mut rng);
                    }
                    let (sample, stats) = sampler.finalize_with_stats(&mut rng);
                    // swh-analyze: allow(blocking-in-hot-path) -- uncontended result handoff, once per partition
                    *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                        Slot::Done(sample, stats);
                }
                partitions_total.add(drained);
                worker_busy.record(start.elapsed_ns());
            });
        }
    });
    let samples: Vec<Sample<T>> = slots
        .iter()
        .map(|slot| {
            let done = std::mem::replace(
                // swh-analyze: allow(blocking-in-hot-path) -- post-join collection: all workers have exited
                &mut *slot.lock().unwrap_or_else(PoisonError::into_inner),
                Slot::Taken,
            );
            let Slot::Done(sample, stats) = done else {
                // Scope join guarantees every slot was filled; an unfinished
                // slot is a worker bug worth a crash.
                unreachable!("every partition produced a sample");
            };
            elements_total.add(stats.observed());
            purges_total.add(stats.purges);
            purge_ns_total.add(stats.purge_ns);
            sample
        })
        .collect();
    samples
}

/// Lifecycle of one partition in the parallel work array: waiting with its
/// input iterator, claimed by a worker, or finished with its sample.
enum Slot<T: SampleValue, I> {
    Pending(I),
    Taken,
    Done(Sample<T>, SamplerStats),
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sample::SampleKind;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn parallel_matches_partition_structure() {
        let parts: Vec<_> = (0..16u64).map(|p| p * 1000..(p + 1) * 1000).collect();
        let samples =
            sample_partitions_parallel(parts, |_| HybridReservoir::<u64>::new(policy(64)), 4, 42);
        assert_eq!(samples.len(), 16);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.parent_size(), 1000, "partition {i}");
            assert_eq!(s.size(), 64);
            assert_eq!(s.kind(), SampleKind::Reservoir);
            // Values must come from the right slice.
            for (v, _) in s.histogram().iter() {
                let lo = i as u64 * 1000;
                assert!((lo..lo + 1000).contains(v));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let make =
            || -> Vec<std::ops::Range<u64>> { (0..8u64).map(|p| p * 100..(p + 1) * 100).collect() };
        let a =
            sample_partitions_parallel(make(), |_| HybridReservoir::<u64>::new(policy(16)), 4, 7);
        let b = sample_partitions_parallel(
            make(),
            |_| HybridReservoir::<u64>::new(policy(16)),
            2, // different thread count must not change results
            7,
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn chunked_workers_match_element_wise_sampling() {
        // The worker loop buffers streams into observe_batch chunks; the
        // Sampler byte-identity contract says that must not change any
        // sample. Check against a serial element-wise reference that uses
        // the same per-partition RNG streams.
        let seed = 99u64;
        let parts: Vec<_> = (0..6u64).map(|p| p * 9_000..(p + 1) * 9_000).collect();
        let expected: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(i, range)| {
                let mut rng = seeded_rng(seed.wrapping_add(i as u64));
                let mut s = HybridReservoir::<u64>::new(policy(64));
                for v in range.clone() {
                    s.observe(v, &mut rng);
                }
                s.finalize(&mut rng)
            })
            .collect();
        let got =
            sample_partitions_parallel(parts, |_| HybridReservoir::<u64>::new(policy(64)), 3, seed);
        assert_eq!(got, expected);
    }

    #[test]
    fn more_threads_than_partitions() {
        let parts: Vec<_> = (0..2u64).map(|p| p * 10..(p + 1) * 10).collect();
        let samples =
            sample_partitions_parallel(parts, |_| HybridReservoir::<u64>::new(policy(16)), 64, 1);
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn workers_claim_partitions_in_arrival_order() {
        // With one worker the claim order is fully observable: the cursor
        // must hand out partitions first-to-last (the old `Vec::pop` drain
        // claimed them last-to-first).
        let order = Mutex::new(Vec::new());
        let parts: Vec<_> = (0..6u64).map(|p| p * 10..(p + 1) * 10).collect();
        let samples = sample_partitions_parallel(
            parts,
            |idx| {
                order
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(idx);
                HybridReservoir::<u64>::new(policy(16))
            },
            1,
            5,
        );
        assert_eq!(samples.len(), 6);
        assert_eq!(
            *order.lock().unwrap_or_else(PoisonError::into_inner),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn empty_partition_list() {
        let samples = sample_partitions_parallel(
            Vec::<std::ops::Range<u64>>::new(),
            |_| HybridReservoir::<u64>::new(policy(16)),
            4,
            1,
        );
        assert!(samples.is_empty());
    }

    #[test]
    fn worker_metrics_account_for_every_partition_and_element() {
        let registry = Registry::new();
        let parts: Vec<_> = (0..10u64).map(|p| p * 500..(p + 1) * 500).collect();
        let samples = sample_partitions_parallel_in(
            &registry,
            parts,
            |_| HybridReservoir::<u64>::new(policy(32)),
            3,
            11,
        );
        assert_eq!(samples.len(), 10);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("swh_parallel_partitions_total"), 10);
        assert_eq!(snap.counter("swh_parallel_elements_total"), 10 * 500);
        // 3 workers ran, each recording one busy-time observation.
        assert_eq!(snap.histogram("swh_parallel_worker_busy_ns").count, 3);
        // Every partition overflows 32 slots, so each purged at least once.
        let purges = snap.counter("swh_parallel_purges_total");
        assert!(purges >= 10, "expected ≥10 purges, got {purges}");
    }
}
