//! Partition lifecycle: background compaction, merged-union caching, and
//! retention.
//!
//! Partitions enter the warehouse *hot* (one sample per ingest window, e.g.
//! per minute). Left alone they accumulate forever and every union query
//! starts from the leaves, so union cost grows linearly with the time span
//! queried. This module adds the lakehouse-style lifecycle from ROADMAP
//! item 4:
//!
//! * **Compaction** ([`LifecycleManager::compact_dataset`], or continuously
//!   via [`LifecycleManager::spawn_background`]): complete windows of hot
//!   partitions are merged into *warm* roll-ups, and complete windows of
//!   warm roll-ups into *cold* ones, via the paper's HB/HR merge paths —
//!   uniformity of the merged sample is preserved by construction, and the
//!   merge fan-in is recorded in lineage
//!   ([`swh_core::lineage::merged_lineage`]). Compacted outputs are written
//!   back as first-class partitions; on disk the protocol is
//!   tombstone-intent → durable output → retire inputs, so a crash at any
//!   step leaves a readable catalog ([`recover_store`]).
//! * **Merged-union caching** ([`UnionCache`]): repeated unions of the same
//!   partition span are answered from a size-bounded cache consulted by
//!   [`crate::Catalog::union_sample`] before planning, invalidated by
//!   roll-in/roll-out/compaction.
//! * **Retention** ([`LifecycleManager::enforce_retention`]): per-dataset
//!   expiry policies (age and footprint budget) retire the oldest
//!   partitions during the compactor's sweep.
//!
//! Together these make the cost of a union over a long time span
//! O(log span) stored samples instead of O(#partitions): a day is one cold
//! partition, the trailing hours are warm, and only the newest window is
//! read from hot leaves.

use crate::catalog::{Catalog, CatalogError};
use crate::codec::ValueCodec;
use crate::durable;
use crate::ids::{DatasetId, PartitionId, PartitionKey};
use crate::store::{DiskStore, StoreError};
use core::time::Duration;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use swh_core::lineage::merged_lineage;
use swh_core::sample::Sample;
use swh_core::value::SampleValue;
use swh_obs::journal::{record, EventKind};

/// Stream-id bit marking a *warm* compacted partition (an hour's worth of
/// hot inputs merged into one sample). The raw stream index occupies the
/// low bits, so `stream & !(WARM_STREAM_BIT | COLD_STREAM_BIT)` recovers
/// the stream the inputs came from.
pub const WARM_STREAM_BIT: u32 = 1 << 30;

/// Stream-id bit marking a *cold* compacted partition (a day's worth of
/// warm roll-ups merged into one sample).
pub const COLD_STREAM_BIT: u32 = 1 << 31;

/// Recover the raw (ingest-time) stream index from a possibly-compacted
/// partition's stream id by masking the tier bits off.
pub fn raw_stream(stream: u32) -> u32 {
    stream & !(WARM_STREAM_BIT | COLD_STREAM_BIT)
}

/// Lifecycle tier of a partition, encoded in its stream id's top bits.
///
/// A compacted partition keeps the *sequence number of the first raw
/// partition it covers* as its own `seq`, so `(tier, seq)` plus the
/// dataset's [`LifecyclePolicy`] fan-ins determine exactly which raw
/// sequence span `[lo, hi]` the sample summarizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Raw ingest partition (e.g. one minute), never compacted.
    Hot,
    /// First-level roll-up: `warm_fan_in` consecutive hot partitions.
    Warm,
    /// Second-level roll-up: `cold_fan_in` consecutive warm roll-ups.
    Cold,
}

impl Tier {
    /// Classify a stream id by its tier bits.
    pub fn of_stream(stream: u32) -> Tier {
        if stream & COLD_STREAM_BIT != 0 {
            Tier::Cold
        } else if stream & WARM_STREAM_BIT != 0 {
            Tier::Warm
        } else {
            Tier::Hot
        }
    }

    /// The stream id a partition of this tier carries for raw stream `raw`.
    pub fn stream(self, raw: u32) -> u32 {
        match self {
            Tier::Hot => raw,
            Tier::Warm => raw | WARM_STREAM_BIT,
            Tier::Cold => raw | COLD_STREAM_BIT,
        }
    }

    /// Lower-case tier name, as used in status output.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Hot => "hot",
            Tier::Warm => "warm",
            Tier::Cold => "cold",
        }
    }
}

/// Per-dataset lifecycle policy: compaction fan-ins plus retention limits.
///
/// Defaults model minutes → hours → days: 60 hot partitions per warm
/// roll-up, 24 warm roll-ups per cold one. A fan-in below 2 disables that
/// compaction level. Retention is off unless a limit is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// Hot partitions merged into one warm roll-up (default 60).
    pub warm_fan_in: u64,
    /// Warm roll-ups merged into one cold roll-up (default 24).
    pub cold_fan_in: u64,
    /// Expire a partition once its span ends more than this many raw
    /// sequence numbers behind the dataset's newest covered sequence.
    pub max_age: Option<u64>,
    /// Expire oldest partitions while the dataset's total sample footprint
    /// (bytes) exceeds this budget.
    pub footprint_budget: Option<u64>,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        Self {
            warm_fan_in: 60,
            cold_fan_in: 24,
            max_age: None,
            footprint_budget: None,
        }
    }
}

impl LifecyclePolicy {
    /// How many raw sequence numbers one partition of `tier` covers.
    pub fn span_len(self, tier: Tier) -> u64 {
        match tier {
            Tier::Hot => 1,
            Tier::Warm => self.warm_fan_in.max(1),
            Tier::Cold => self.warm_fan_in.max(1) * self.cold_fan_in.max(1),
        }
    }

    /// Inclusive raw-sequence span `[lo, hi]` covered by partition `p`
    /// under this policy.
    pub fn span_of(self, p: PartitionId) -> (u64, u64) {
        let len = self.span_len(Tier::of_stream(p.stream));
        (p.seq, p.seq + len - 1)
    }
}

/// Errors from lifecycle operations.
#[derive(Debug)]
pub enum LifecycleError {
    /// Underlying catalog operation failed.
    Catalog(CatalogError),
    /// Underlying store operation failed.
    Store(StoreError),
    /// A range union crossed into the middle of a compacted span: the span
    /// can only be answered whole, because its hot inputs were retired.
    MisalignedSpan {
        /// Dataset the query ran against.
        dataset: DatasetId,
        /// The compacted partition that straddles the requested range.
        partition: PartitionId,
        /// First raw sequence the compacted partition covers.
        lo: u64,
        /// Last raw sequence the compacted partition covers.
        hi: u64,
    },
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::Catalog(e) => write!(f, "catalog error: {e}"),
            LifecycleError::Store(e) => write!(f, "store error: {e}"),
            LifecycleError::MisalignedSpan {
                dataset,
                partition,
                lo,
                hi,
            } => write!(
                f,
                "range crosses compacted span {partition} of {dataset} (covers seqs {lo}..={hi}); \
                 widen the range to whole compacted spans"
            ),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<CatalogError> for LifecycleError {
    fn from(e: CatalogError) -> Self {
        LifecycleError::Catalog(e)
    }
}

impl From<StoreError> for LifecycleError {
    fn from(e: StoreError) -> Self {
        LifecycleError::Store(e)
    }
}

impl From<io::Error> for LifecycleError {
    fn from(e: io::Error) -> Self {
        LifecycleError::Store(StoreError::Io(e))
    }
}

// ---------------------------------------------------------------------------
// Merged-union cache
// ---------------------------------------------------------------------------

/// Cache key: the exact partition selection a union was computed over, plus
/// the parameters that shape the merged sample. Two unions share an entry
/// only if they selected the same partitions of the same dataset with the
/// same footprint target `n_F` and merge probability bound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    dataset: DatasetId,
    parts: Vec<PartitionId>,
    n_f: u64,
    p_bits: u64,
}

impl CacheKey {
    /// Build a key from an (unordered) selection. The partition list is
    /// sorted so any enumeration order of the same selection hits the same
    /// entry; `p_bound` is keyed by its exact bit pattern.
    pub fn new(dataset: DatasetId, mut parts: Vec<PartitionId>, n_f: u64, p_bound: f64) -> Self {
        parts.sort_unstable();
        Self {
            dataset,
            parts,
            n_f,
            p_bits: p_bound.to_bits(),
        }
    }

    /// Dataset the cached union belongs to.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// Number of partitions in the cached selection.
    pub fn width(&self) -> usize {
        self.parts.len()
    }
}

#[derive(Debug)]
struct CacheEntry<T: SampleValue> {
    sample: Sample<T>,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug)]
struct CacheInner<T: SampleValue> {
    map: BTreeMap<CacheKey, CacheEntry<T>>,
    epochs: BTreeMap<DatasetId, u64>,
    clock: u64,
    bytes: u64,
    lookups: u64,
    hits: u64,
}

#[derive(Debug)]
struct CacheMetrics {
    hits: swh_obs::Counter,
    misses: swh_obs::Counter,
    evictions: swh_obs::Counter,
    entries: swh_obs::Gauge,
    bytes: swh_obs::Gauge,
    hit_rate_ppm: swh_obs::Gauge,
}

impl CacheMetrics {
    fn in_registry(registry: &swh_obs::Registry) -> Self {
        Self {
            hits: registry.counter(
                "swh_union_cache_hits_total",
                "Union queries answered from the merged-union cache",
            ),
            misses: registry.counter(
                "swh_union_cache_misses_total",
                "Union queries that missed the merged-union cache",
            ),
            evictions: registry.counter(
                "swh_union_cache_evictions_total",
                "Merged-union cache entries evicted to stay under the byte budget",
            ),
            entries: registry.gauge(
                "swh_union_cache_entries",
                "Merged-union cache resident entries",
            ),
            bytes: registry.gauge(
                "swh_union_cache_bytes",
                "Merged-union cache resident bytes (sample footprints plus key overhead)",
            ),
            hit_rate_ppm: registry.gauge(
                "swh_union_cache_hit_rate_ppm",
                "Merged-union cache lifetime hit rate, parts per million (published after a warm-up of lookups)",
            ),
        }
    }
}

/// Don't publish the hit-rate gauge until this many lookups have been
/// observed: a freshly started process serves only compulsory misses, and
/// the builtin low-hit-rate alert must not fire on that warm-up.
const RATE_MIN_LOOKUPS: u64 = 64;

/// Fixed per-entry overhead charged on top of the sample footprint: key
/// partition ids (24 bytes each is a safe upper bound for id + map slot)
/// plus map/entry bookkeeping.
const ENTRY_BASE_BYTES: u64 = 64;

/// Size-bounded cache of merged union samples, keyed by the exact partition
/// selection (see [`CacheKey`]).
///
/// Consistency is epoch-based: every dataset has a monotonically increasing
/// epoch, bumped by [`UnionCache::invalidate_dataset`] (which the catalog
/// calls on roll-in, roll-out, and hence on every compaction). A union
/// query captures the epoch *under the catalog read lock that snapshots the
/// selection*, computes the merge outside the lock, and offers the result
/// with that epoch — [`UnionCache::insert`] refuses it if the dataset has
/// been invalidated in between, so a stale merge can never be cached over a
/// mutation that happened mid-flight.
///
/// Eviction is LRU by a logical clock, driven by a byte budget measured in
/// sample footprint bytes (plus small per-entry overhead). An entry larger
/// than the whole budget is simply not cached.
#[derive(Debug)]
pub struct UnionCache<T: SampleValue> {
    max_bytes: u64,
    inner: Mutex<CacheInner<T>>,
    metrics: CacheMetrics,
}

impl<T: SampleValue> UnionCache<T> {
    /// Cache bounded to `max_bytes` of resident sample footprint, reporting
    /// to the global metrics registry.
    pub fn new(max_bytes: u64) -> Self {
        Self::with_registry(swh_obs::global(), max_bytes)
    }

    /// Cache reporting into an explicit registry (tests pin exact counts).
    pub fn with_registry(registry: &swh_obs::Registry, max_bytes: u64) -> Self {
        Self {
            max_bytes,
            inner: Mutex::new(CacheInner {
                map: BTreeMap::new(),
                epochs: BTreeMap::new(),
                clock: 0,
                bytes: 0,
                lookups: 0,
                hits: 0,
            }),
            metrics: CacheMetrics::in_registry(registry),
        }
    }

    /// The byte budget this cache was built with.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Current invalidation epoch of `dataset`. Capture it while holding
    /// whatever lock makes the selection consistent, and pass it back to
    /// [`UnionCache::insert`].
    pub fn epoch(&self, dataset: DatasetId) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.epochs.get(&dataset).copied().unwrap_or(0)
    }

    /// Look up a cached union. A hit refreshes the entry's LRU position and
    /// clones the sample out.
    pub fn get(&self, key: &CacheKey) -> Option<Sample<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.lookups += 1;
        inner.clock += 1;
        let clock = inner.clock;
        let found = match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                Some(entry.sample.clone())
            }
            None => None,
        };
        if found.is_some() {
            inner.hits += 1;
            self.metrics.hits.inc();
        } else {
            self.metrics.misses.inc();
        }
        self.publish_rate(&inner);
        found
    }

    /// Offer a freshly computed union for caching. `epoch` must be the
    /// value of [`UnionCache::epoch`] captured when the selection was
    /// snapshotted; if the dataset has been invalidated since, the insert
    /// is refused (returns `false`) — the result may describe partitions
    /// that no longer exist. Entries larger than the whole budget are also
    /// refused.
    pub fn insert(&self, key: CacheKey, sample: Sample<T>, epoch: u64) -> bool {
        let entry_bytes = sample.footprint_bytes() + key.parts.len() as u64 * 24 + ENTRY_BASE_BYTES;
        if entry_bytes > self.max_bytes {
            return false;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.epochs.get(&key.dataset).copied().unwrap_or(0) != epoch {
            return false;
        }
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + entry_bytes > self.max_bytes {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.bytes -= evicted.bytes;
                self.metrics.evictions.inc();
            }
        }
        inner.clock += 1;
        let entry = CacheEntry {
            sample,
            bytes: entry_bytes,
            last_used: inner.clock,
        };
        inner.bytes += entry_bytes;
        inner.map.insert(key, entry);
        self.publish_sizes(&inner);
        true
    }

    /// Invalidate every cached union of `dataset` and bump its epoch so
    /// in-flight merges that started before the mutation cannot be inserted
    /// afterwards. Returns the number of entries dropped and records an
    /// [`EventKind::UnionCacheInvalidate`] journal event.
    pub fn invalidate_dataset(&self, dataset: DatasetId) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        *inner.epochs.entry(dataset).or_insert(0) += 1;
        let before = inner.map.len();
        let mut freed = 0;
        inner.map.retain(|k, e| {
            if k.dataset == dataset {
                freed += e.bytes;
                false
            } else {
                true
            }
        });
        inner.bytes -= freed;
        let dropped = (before - inner.map.len()) as u64;
        self.publish_sizes(&inner);
        record(EventKind::UnionCacheInvalidate, 0, 0, dataset.0, dropped);
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// True when no union is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes (sample footprints plus per-entry overhead).
    pub fn bytes(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes
    }

    /// Lifetime (lookups, hits) counts.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (inner.lookups, inner.hits)
    }

    fn publish_rate(&self, inner: &CacheInner<T>) {
        if inner.lookups >= RATE_MIN_LOOKUPS {
            let ppm = inner.hits.saturating_mul(1_000_000) / inner.lookups;
            self.metrics.hit_rate_ppm.set(ppm as i64);
        }
    }

    fn publish_sizes(&self, inner: &CacheInner<T>) {
        self.metrics.entries.set(inner.map.len() as i64);
        self.metrics.bytes.set(inner.bytes as i64);
    }
}

// ---------------------------------------------------------------------------
// Tombstone intents and crash recovery
// ---------------------------------------------------------------------------

/// A compaction intent, written durably *before* the merged output: which
/// inputs the listed output replaces. The tombstone is retained beside the
/// compacted partition afterwards so `fsck` can check the output's recorded
/// merge fan-in against the inputs it actually replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TombRecord {
    /// Dataset the compaction ran in.
    pub dataset: DatasetId,
    /// The compacted output partition.
    pub output: PartitionId,
    /// The hot (or warm) inputs the output replaces, in id order.
    pub inputs: Vec<PartitionId>,
}

/// Path of the tombstone file for compacted partition `output`:
/// `<root>/ds<N>/p<stream>_<seq>.tomb`, beside the partition files.
pub fn tomb_path(store: &DiskStore, dataset: DatasetId, output: PartitionId) -> PathBuf {
    store
        .dataset_dir(dataset)
        .join(format!("p{}_{}.tomb", output.stream, output.seq))
}

/// Durably write a compaction tombstone (fsync-then-rename, like every
/// other store write).
pub fn write_tomb(store: &DiskStore, tomb: &TombRecord) -> io::Result<()> {
    let mut text = String::from("swh-tomb v1\n");
    text.push_str(&format!("dataset {}\n", tomb.dataset.0));
    text.push_str(&format!(
        "output p{}_{}\n",
        tomb.output.stream, tomb.output.seq
    ));
    for p in &tomb.inputs {
        text.push_str(&format!("input p{}_{}\n", p.stream, p.seq));
    }
    std::fs::create_dir_all(store.dataset_dir(tomb.dataset))?;
    durable::atomic_write(
        &tomb_path(store, tomb.dataset, tomb.output),
        text.as_bytes(),
    )
}

fn parse_part(body: &str) -> Option<PartitionId> {
    let body = body.strip_prefix('p')?;
    let (stream, seq) = body.split_once('_')?;
    Some(PartitionId {
        stream: stream.parse().ok()?,
        seq: seq.parse().ok()?,
    })
}

/// Parse a tombstone file written by [`write_tomb`].
pub fn read_tomb(path: &Path) -> io::Result<TombRecord> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("tomb: {what}"));
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some("swh-tomb v1") {
        return Err(bad("missing header"));
    }
    let dataset = lines
        .next()
        .and_then(|l| l.strip_prefix("dataset "))
        .and_then(|n| n.parse().ok())
        .map(DatasetId)
        .ok_or_else(|| bad("missing dataset line"))?;
    let output = lines
        .next()
        .and_then(|l| l.strip_prefix("output "))
        .and_then(parse_part)
        .ok_or_else(|| bad("missing output line"))?;
    let mut inputs = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let p = line
            .strip_prefix("input ")
            .and_then(parse_part)
            .ok_or_else(|| bad("bad input line"))?;
        inputs.push(p);
    }
    Ok(TombRecord {
        dataset,
        output,
        inputs,
    })
}

/// List every tombstone of a dataset, in output-id order.
pub fn list_tombs(store: &DiskStore, dataset: DatasetId) -> Result<Vec<TombRecord>, StoreError> {
    let dir = store.dataset_dir(dataset);
    let mut tombs = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(tombs),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("tomb") {
            tombs.push(read_tomb(&path)?);
        }
    }
    tombs.sort_by_key(|t| t.output);
    Ok(tombs)
}

/// All datasets with a directory in the store (`ds<N>`), in id order.
pub fn store_datasets(store: &DiskStore) -> Result<Vec<DatasetId>, StoreError> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(store.root()) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let name = entry?.file_name();
        if let Some(n) = name.to_str().and_then(|n| n.strip_prefix("ds")) {
            if let Ok(n) = n.parse() {
                out.push(DatasetId(n));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// What [`recover_store`] found and did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Tombstones whose output never became durable (crash between intent
    /// and output write): removed, inputs left untouched.
    pub orphaned_tombs: u64,
    /// Input files retired because their tombstone's output *is* durable
    /// (crash between output write and input retirement): deleted now.
    pub retired_inputs: u64,
    /// Tombstones whose compaction had fully completed.
    pub validated: u64,
}

/// Roll the store forward through any compaction that crashed mid-protocol.
///
/// The compaction protocol is tombstone-intent → durable output → retire
/// inputs, so recovery is a pure function of which files exist:
///
/// * tombstone without its output → the merge never became durable; drop
///   the tombstone, the hot inputs are still the source of truth;
/// * tombstone with its output → the merge is durable; finish retiring any
///   inputs that survived the crash.
///
/// Idempotent: running it twice is a no-op. `swh store fsck` and
/// `swh lifecycle compact-now` both run it before anything else.
pub fn recover_store(store: &DiskStore) -> Result<RecoveryReport, StoreError> {
    let mut report = RecoveryReport::default();
    for dataset in store_datasets(store)? {
        for tomb in list_tombs(store, dataset)? {
            let out_key = PartitionKey {
                dataset,
                partition: tomb.output,
            };
            if store.contains(out_key) {
                for input in &tomb.inputs {
                    let in_key = PartitionKey {
                        dataset,
                        partition: *input,
                    };
                    if store.remove(in_key)? {
                        report.retired_inputs += 1;
                    }
                    // A retired input that was itself a roll-up leaves its
                    // own (now superseded) tombstone behind — drop it so it
                    // is not mistaken for a crashed compaction later.
                    let input_tomb = tomb_path(store, dataset, *input);
                    if input_tomb.exists() {
                        std::fs::remove_file(input_tomb)?;
                    }
                }
                report.validated += 1;
            } else {
                std::fs::remove_file(tomb_path(store, dataset, tomb.output))?;
                report.orphaned_tombs += 1;
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Policy persistence
// ---------------------------------------------------------------------------

/// File name of the per-store lifecycle policy table.
pub const POLICY_FILE: &str = "lifecycle.tsv";

fn opt_field(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

fn parse_opt(s: &str) -> Result<Option<u64>, ()> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| ())
    }
}

/// Durably persist the per-dataset policy table to `<root>/lifecycle.tsv`
/// (one `dataset warm cold max_age budget` line per dataset, `-` for an
/// unset limit).
pub fn save_policies(
    root: &Path,
    policies: &BTreeMap<DatasetId, LifecyclePolicy>,
) -> io::Result<()> {
    let mut text = String::new();
    for (ds, p) in policies {
        text.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            ds.0,
            p.warm_fan_in,
            p.cold_fan_in,
            opt_field(p.max_age),
            opt_field(p.footprint_budget),
        ));
    }
    durable::atomic_write(&root.join(POLICY_FILE), text.as_bytes())
}

/// Load the policy table written by [`save_policies`]; a missing file is an
/// empty table.
pub fn load_policies(root: &Path) -> io::Result<BTreeMap<DatasetId, LifecyclePolicy>> {
    let text = match std::fs::read_to_string(root.join(POLICY_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
        Err(e) => return Err(e),
    };
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "malformed lifecycle.tsv");
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        let mut f = line.split('\t');
        let (Some(ds), Some(warm), Some(cold), Some(age), Some(budget), None) =
            (f.next(), f.next(), f.next(), f.next(), f.next(), f.next())
        else {
            return Err(bad());
        };
        let policy = LifecyclePolicy {
            warm_fan_in: warm.parse().map_err(|_| bad())?,
            cold_fan_in: cold.parse().map_err(|_| bad())?,
            max_age: parse_opt(age).map_err(|_| bad())?,
            footprint_budget: parse_opt(budget).map_err(|_| bad())?,
        };
        out.insert(DatasetId(ds.parse().map_err(|_| bad())?), policy);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The lifecycle manager
// ---------------------------------------------------------------------------

/// What one compaction pass (or sweep) accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Warm roll-ups built from complete hot windows.
    pub warm_built: u64,
    /// Cold roll-ups built from complete warm windows.
    pub cold_built: u64,
    /// Input partitions retired into roll-ups.
    pub inputs_retired: u64,
    /// Partitions expired by retention.
    pub expired: u64,
}

impl CompactionReport {
    /// Fold another report into this one.
    pub fn absorb(&mut self, other: CompactionReport) {
        self.warm_built += other.warm_built;
        self.cold_built += other.cold_built;
        self.inputs_retired += other.inputs_retired;
        self.expired += other.expired;
    }
}

#[derive(Debug)]
struct LifecycleMetrics {
    compactions: swh_obs::Counter,
    retired_inputs: swh_obs::Counter,
    expired: swh_obs::Counter,
    sweep_errors: swh_obs::Counter,
    backlog: swh_obs::Gauge,
    compacted_spans: swh_obs::Gauge,
}

impl LifecycleMetrics {
    fn in_registry(registry: &swh_obs::Registry) -> Self {
        Self {
            compactions: registry.counter(
                "swh_lifecycle_compactions_total",
                "Compacted roll-up partitions built (warm and cold)",
            ),
            retired_inputs: registry.counter(
                "swh_lifecycle_retired_inputs_total",
                "Input partitions retired into compacted roll-ups",
            ),
            expired: registry.counter(
                "swh_lifecycle_expired_partitions_total",
                "Partitions expired by retention policies",
            ),
            sweep_errors: registry.counter(
                "swh_lifecycle_sweep_errors_total",
                "Background compactor sweeps that failed",
            ),
            backlog: registry.gauge(
                "swh_lifecycle_backlog_partitions",
                "Input partitions sitting in complete windows awaiting compaction (measured at sweep start)",
            ),
            compacted_spans: registry.gauge(
                "swh_lifecycle_compacted_spans",
                "Warm and cold roll-up partitions resident in the catalog",
            ),
        }
    }
}

/// Coordinates compaction, retention, and span-aware range unions over one
/// catalog (optionally mirrored to a [`DiskStore`]).
///
/// All mutations go through the catalog's own locking; the manager holds no
/// lock across a merge. With a store attached, every compaction follows the
/// tombstone-intent → durable output → retire inputs protocol *before*
/// touching the catalog, so a crash at any step is repaired by
/// [`recover_store`] on the next open.
#[derive(Debug)]
pub struct LifecycleManager<T: ValueCodec> {
    catalog: Arc<Catalog<T>>,
    store: Option<DiskStore>,
    p_bound: f64,
    policies: RwLock<BTreeMap<DatasetId, LifecyclePolicy>>,
    metrics: LifecycleMetrics,
}

impl<T: ValueCodec> LifecycleManager<T> {
    /// Manager over `catalog`, persisting compactions to `store` when
    /// given. `p_bound` is the merge probability bound used for roll-ups
    /// (the same one queries pass to `union_sample`).
    pub fn new(catalog: Arc<Catalog<T>>, store: Option<DiskStore>, p_bound: f64) -> Self {
        Self::with_registry(swh_obs::global(), catalog, store, p_bound)
    }

    /// [`LifecycleManager::new`] reporting into an explicit registry.
    pub fn with_registry(
        registry: &swh_obs::Registry,
        catalog: Arc<Catalog<T>>,
        store: Option<DiskStore>,
        p_bound: f64,
    ) -> Self {
        Self {
            catalog,
            store,
            p_bound,
            policies: RwLock::new(BTreeMap::new()),
            metrics: LifecycleMetrics::in_registry(registry),
        }
    }

    /// The catalog this manager compacts.
    pub fn catalog(&self) -> &Arc<Catalog<T>> {
        &self.catalog
    }

    /// The backing store, when compactions are persisted.
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    /// Set (or replace) a dataset's lifecycle policy.
    pub fn set_policy(&self, dataset: DatasetId, policy: LifecyclePolicy) {
        self.policies
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(dataset, policy);
    }

    /// The dataset's policy (default when none was set).
    pub fn policy(&self, dataset: DatasetId) -> LifecyclePolicy {
        self.policies
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&dataset)
            .copied()
            .unwrap_or_default()
    }

    /// Snapshot of all explicitly-set policies.
    pub fn policies(&self) -> BTreeMap<DatasetId, LifecyclePolicy> {
        self.policies
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Load policies persisted in the store root (no-op without a store).
    /// Returns how many datasets had a policy.
    pub fn load_policies(&self) -> io::Result<usize> {
        let Some(store) = &self.store else {
            return Ok(0);
        };
        let loaded = load_policies(store.root())?;
        let n = loaded.len();
        *self
            .policies
            .write()
            .unwrap_or_else(PoisonError::into_inner) = loaded;
        Ok(n)
    }

    /// Persist the current policies to the store root (no-op without a
    /// store).
    pub fn save_policies(&self) -> io::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        save_policies(store.root(), &self.policies())
    }

    /// Compact every complete window of `dataset`: hot → warm first, then
    /// warm → cold (so a sweep can cascade minutes all the way into days).
    pub fn compact_dataset<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        rng: &mut R,
    ) -> Result<CompactionReport, LifecycleError> {
        let policy = self.policy(dataset);
        let mut report = CompactionReport::default();
        if policy.warm_fan_in >= 2 {
            report.absorb(self.compact_tier(dataset, policy, Tier::Hot, rng)?);
            if policy.cold_fan_in >= 2 {
                report.absorb(self.compact_tier(dataset, policy, Tier::Warm, rng)?);
            }
        }
        Ok(report)
    }

    /// Complete, uncompacted windows of `from`-tier partitions, as
    /// `(raw_stream, window_lo_seq, input_ids)` tuples.
    fn complete_windows(
        &self,
        dataset: DatasetId,
        policy: LifecyclePolicy,
        from: Tier,
    ) -> Vec<(u32, u64, Vec<PartitionId>)> {
        let Ok(parts) = self.catalog.partitions(dataset) else {
            return Vec::new();
        };
        let fan_in = match from {
            Tier::Hot => policy.warm_fan_in,
            Tier::Warm => policy.cold_fan_in,
            Tier::Cold => return Vec::new(),
        };
        let stride = policy.span_len(from);
        let width = stride * fan_in;
        let mut by_stream: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
        for p in parts {
            if Tier::of_stream(p.stream) == from {
                by_stream
                    .entry(raw_stream(p.stream))
                    .or_default()
                    .insert(p.seq);
            }
        }
        let mut windows = Vec::new();
        for (raw, seqs) in &by_stream {
            let mut done = BTreeSet::new();
            for &seq in seqs {
                let w = seq / width;
                if !done.insert(w) {
                    continue;
                }
                let inputs: Vec<PartitionId> = (0..fan_in)
                    .map(|i| w * width + i * stride)
                    .take_while(|s| seqs.contains(s))
                    .map(|s| PartitionId {
                        stream: from.stream(*raw),
                        seq: s,
                    })
                    .collect();
                if inputs.len() as u64 == fan_in {
                    windows.push((*raw, w * width, inputs));
                }
            }
        }
        windows
    }

    fn compact_tier<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        policy: LifecyclePolicy,
        from: Tier,
        rng: &mut R,
    ) -> Result<CompactionReport, LifecycleError> {
        let to = match from {
            Tier::Hot => Tier::Warm,
            Tier::Warm => Tier::Cold,
            Tier::Cold => return Ok(CompactionReport::default()),
        };
        let mut report = CompactionReport::default();
        for (raw, lo, inputs) in self.complete_windows(dataset, policy, from) {
            let fan_in = inputs.len();
            let output = PartitionId {
                stream: to.stream(raw),
                seq: lo,
            };
            let samples: Vec<Sample<T>> = inputs
                .iter()
                .map(|p| {
                    self.catalog.get(PartitionKey {
                        dataset,
                        partition: *p,
                    })
                })
                .collect::<Result<_, _>>()?;
            let lineages: Vec<Vec<swh_core::lineage::LineageEvent>> =
                samples.iter().map(|s| s.lineage().to_vec()).collect();
            let parents: Vec<&[swh_core::lineage::LineageEvent]> =
                lineages.iter().map(Vec::as_slice).collect();
            let mut merged = swh_core::merge::merge_all(samples, self.p_bound, rng)
                .map_err(CatalogError::from)?;
            // A serial fold records one Merge{fan_in: 2} per step; the
            // roll-up is semantically one k-ary merge, and fsck checks the
            // recorded fan-in against the tombstoned inputs — record it
            // truthfully.
            merged.set_lineage(merged_lineage(&parents, fan_in as u32, 0));
            if let Some(store) = &self.store {
                let tomb = TombRecord {
                    dataset,
                    output,
                    inputs: inputs.clone(),
                };
                write_tomb(store, &tomb)?;
                store.save(
                    PartitionKey {
                        dataset,
                        partition: output,
                    },
                    &merged,
                )?;
                for p in &inputs {
                    store.remove(PartitionKey {
                        dataset,
                        partition: *p,
                    })?;
                    // An input that was itself a roll-up carries its own
                    // tombstone; the new tombstone supersedes its story.
                    let tomb = tomb_path(store, dataset, *p);
                    if tomb.exists() {
                        std::fs::remove_file(tomb)?;
                    }
                }
            }
            for p in &inputs {
                self.catalog.roll_out(PartitionKey {
                    dataset,
                    partition: *p,
                })?;
            }
            self.catalog.roll_in(
                PartitionKey {
                    dataset,
                    partition: output,
                },
                merged,
            )?;
            record(EventKind::Compaction, 0, 0, dataset.0, fan_in as u64);
            self.metrics.compactions.inc();
            self.metrics.retired_inputs.add(fan_in as u64);
            report.inputs_retired += fan_in as u64;
            match to {
                Tier::Warm => report.warm_built += 1,
                Tier::Cold => report.cold_built += 1,
                Tier::Hot => {}
            }
        }
        Ok(report)
    }

    /// Expire partitions per the dataset's retention policy: first by age
    /// (span ends more than `max_age` raw seqs behind the newest), then
    /// oldest-first while the dataset's footprint exceeds the budget.
    /// Returns how many partitions were expired.
    pub fn enforce_retention(&self, dataset: DatasetId) -> Result<u64, LifecycleError> {
        let policy = self.policy(dataset);
        if policy.max_age.is_none() && policy.footprint_budget.is_none() {
            return Ok(0);
        }
        let parts = match self.catalog.partitions(dataset) {
            Ok(p) => p,
            Err(CatalogError::UnknownDataset(_)) => return Ok(0),
            Err(e) => return Err(e.into()),
        };
        let latest = parts
            .iter()
            .map(|p| policy.span_of(*p).1)
            .max()
            .unwrap_or(0);
        let mut doomed: BTreeSet<PartitionId> = BTreeSet::new();
        if let Some(age) = policy.max_age {
            for p in &parts {
                if policy.span_of(*p).1 + age < latest {
                    doomed.insert(*p);
                }
            }
        }
        if let Some(budget) = policy.footprint_budget {
            let foots = self.catalog.footprints(dataset)?;
            let mut total: u64 = foots
                .iter()
                .filter(|(p, _)| !doomed.contains(p))
                .map(|(_, b)| b)
                .sum();
            let mut by_age: Vec<(PartitionId, u64)> = foots
                .into_iter()
                .filter(|(p, _)| !doomed.contains(p))
                .collect();
            by_age.sort_by_key(|(p, _)| policy.span_of(*p).1);
            for (p, bytes) in by_age {
                if total <= budget {
                    break;
                }
                doomed.insert(p);
                total -= bytes;
            }
        }
        let expired = doomed.len() as u64;
        for p in doomed {
            let key = PartitionKey {
                dataset,
                partition: p,
            };
            self.catalog.roll_out(key)?;
            if let Some(store) = &self.store {
                store.remove(key)?;
                let tomb = tomb_path(store, dataset, p);
                if tomb.exists() {
                    std::fs::remove_file(tomb)?;
                }
            }
        }
        if expired > 0 {
            record(EventKind::Retention, 0, 0, dataset.0, expired);
            self.metrics.expired.add(expired);
        }
        Ok(expired)
    }

    /// Input partitions sitting in complete windows awaiting compaction —
    /// the compactor's work queue depth for `dataset`.
    pub fn backlog(&self, dataset: DatasetId) -> u64 {
        let policy = self.policy(dataset);
        let mut n = 0;
        if policy.warm_fan_in >= 2 {
            n += self
                .complete_windows(dataset, policy, Tier::Hot)
                .iter()
                .map(|(_, _, inputs)| inputs.len() as u64)
                .sum::<u64>();
            if policy.cold_fan_in >= 2 {
                n += self
                    .complete_windows(dataset, policy, Tier::Warm)
                    .iter()
                    .map(|(_, _, inputs)| inputs.len() as u64)
                    .sum::<u64>();
            }
        }
        n
    }

    /// One full maintenance pass over every dataset: measure backlog,
    /// compact complete windows, enforce retention, refresh gauges.
    pub fn sweep<R: rand::Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<CompactionReport, LifecycleError> {
        let datasets = self.catalog.datasets();
        let backlog: u64 = datasets.iter().map(|ds| self.backlog(*ds)).sum();
        self.metrics.backlog.set(backlog as i64);
        let mut report = CompactionReport::default();
        for ds in datasets {
            report.absorb(self.compact_dataset(ds, rng)?);
            report.expired += self.enforce_retention(ds)?;
        }
        let spans: u64 = self
            .catalog
            .datasets()
            .into_iter()
            .filter_map(|ds| self.catalog.partitions(ds).ok())
            .flatten()
            .filter(|p| Tier::of_stream(p.stream) != Tier::Hot)
            .count() as u64;
        self.metrics.compacted_spans.set(spans as i64);
        Ok(report)
    }

    /// Union over the raw sequence range `seqs` of one raw stream,
    /// preferring the coarsest resident representation: cold roll-ups fully
    /// inside the range, then warm roll-ups over the remainder, then hot
    /// leaves. This is what makes long-span unions touch O(log span)
    /// samples. A compacted span that straddles the range boundary is an
    /// error ([`LifecycleError::MisalignedSpan`]) — its raw inputs were
    /// retired, so the range cannot be answered exactly.
    pub fn union_seq_range<R: rand::Rng + ?Sized>(
        &self,
        dataset: DatasetId,
        raw: u32,
        seqs: std::ops::RangeInclusive<u64>,
        rng: &mut R,
    ) -> Result<Sample<T>, LifecycleError> {
        let policy = self.policy(dataset);
        let (lo, hi) = (*seqs.start(), *seqs.end());
        let parts = self.catalog.partitions(dataset)?;
        let mut selected: BTreeSet<PartitionId> = BTreeSet::new();
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        for tier in [Tier::Cold, Tier::Warm] {
            for p in parts
                .iter()
                .filter(|p| Tier::of_stream(p.stream) == tier && raw_stream(p.stream) == raw)
            {
                let (plo, phi) = policy.span_of(*p);
                if phi < lo || plo > hi {
                    continue;
                }
                if plo < lo || phi > hi {
                    return Err(LifecycleError::MisalignedSpan {
                        dataset,
                        partition: *p,
                        lo: plo,
                        hi: phi,
                    });
                }
                // Warm spans whose seqs a selected cold span already covers
                // cannot exist (compaction retires them), but guard anyway.
                if (plo..=phi).any(|s| covered.contains(&s)) {
                    continue;
                }
                selected.insert(*p);
                covered.extend(plo..=phi);
            }
        }
        for p in parts.iter().filter(|p| {
            Tier::of_stream(p.stream) == Tier::Hot
                && p.stream == raw
                && (lo..=hi).contains(&p.seq)
                && !covered.contains(&p.seq)
        }) {
            selected.insert(*p);
        }
        Ok(self
            .catalog
            .union_sample(dataset, |p| selected.contains(&p), self.p_bound, rng)?)
    }

    /// Human/machine-readable lifecycle status of every dataset in the
    /// catalog, as JSON (tier counts, backlog, policy, footprint).
    pub fn status_json(&self) -> String {
        let mut out = String::from("{\"datasets\":[");
        let mut first = true;
        for ds in self.catalog.datasets() {
            let parts = self.catalog.partitions(ds).unwrap_or_default();
            let count = |t: Tier| {
                parts
                    .iter()
                    .filter(|p| Tier::of_stream(p.stream) == t)
                    .count()
            };
            let footprint: u64 = self
                .catalog
                .footprints(ds)
                .map(|f| f.iter().map(|(_, b)| b).sum())
                .unwrap_or(0);
            let p = self.policy(ds);
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"dataset\":{},\"hot\":{},\"warm\":{},\"cold\":{},\"backlog\":{},\
                 \"footprint_bytes\":{},\"policy\":{{\"warm_fan_in\":{},\"cold_fan_in\":{},\
                 \"max_age\":{},\"footprint_budget\":{}}}}}",
                ds.0,
                count(Tier::Hot),
                count(Tier::Warm),
                count(Tier::Cold),
                self.backlog(ds),
                footprint,
                p.warm_fan_in,
                p.cold_fan_in,
                p.max_age.map_or("null".into(), |v: u64| v.to_string()),
                p.footprint_budget
                    .map_or("null".into(), |v: u64| v.to_string()),
            ));
        }
        out.push_str("]}");
        out
    }
}

impl<T: ValueCodec + Sync> LifecycleManager<T> {
    /// Start the background compactor: a thread that runs
    /// [`LifecycleManager::sweep`] every `interval` until the returned
    /// handle is stopped (or dropped). Merge randomness comes from a
    /// dedicated RNG seeded with `seed`, so compaction never perturbs the
    /// caller's RNG streams.
    pub fn spawn_background(self: &Arc<Self>, interval: Duration, seed: u64) -> CompactorHandle {
        let mgr = Arc::clone(self);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("swh-compactor".into())
            .spawn(move || {
                let mut rng = swh_rand::seeded_rng(seed);
                let (lock, cvar) = &*flag;
                let mut stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    if mgr.sweep(&mut rng).is_err() {
                        mgr.metrics.sweep_errors.inc();
                    }
                    stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    if *stopped {
                        return;
                    }
                    (stopped, _) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            })
            // swh-analyze: allow(panic) -- spawn with a static valid name only fails on OS thread exhaustion, unrecoverable here
            .expect("spawn swh-compactor");
        CompactorHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Handle to a running background compactor ([
/// `LifecycleManager::spawn_background`]). Stopping (explicitly or by
/// dropping the handle) wakes the thread and joins it.
#[derive(Debug)]
pub struct CompactorHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Signal the compactor to stop and wait for the current sweep to
    /// finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cvar.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Type-agnostic lifecycle status of a disk store (no catalog needed):
/// per-dataset tier counts from the file layout, tombstone counts, and the
/// persisted policy table. `swh lifecycle status` and the `/lifecycle`
/// serve route read this, so they work against stores of any element type.
pub fn store_status_json(store: &DiskStore) -> Result<String, StoreError> {
    let policies = load_policies(store.root()).unwrap_or_default();
    let mut out = String::from("{\"datasets\":[");
    let mut first = true;
    for ds in store_datasets(store)? {
        let keys = store.list(ds)?;
        let count = |t: Tier| {
            keys.iter()
                .filter(|k| Tier::of_stream(k.partition.stream) == t)
                .count()
        };
        let tombs = list_tombs(store, ds)?.len();
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"dataset\":{},\"hot\":{},\"warm\":{},\"cold\":{},\"tombstones\":{}",
            ds.0,
            count(Tier::Hot),
            count(Tier::Warm),
            count(Tier::Cold),
            tombs,
        ));
        if let Some(p) = policies.get(&ds) {
            out.push_str(&format!(
                ",\"policy\":{{\"warm_fan_in\":{},\"cold_fan_in\":{},\"max_age\":{},\
                 \"footprint_budget\":{}}}",
                p.warm_fan_in,
                p.cold_fan_in,
                p.max_age.map_or("null".into(), |v: u64| v.to_string()),
                p.footprint_budget
                    .map_or("null".into(), |v: u64| v.to_string()),
            ));
        }
        out.push('}');
    }
    out.push_str("]}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn sample(range: std::ops::Range<u64>, rng: &mut rand::rngs::SmallRng) -> Sample<u64> {
        HybridReservoir::new(FootprintPolicy::with_value_budget(32)).sample_batch(range, rng)
    }

    fn key(ds: u64, seq: u64) -> PartitionKey {
        PartitionKey {
            dataset: DatasetId(ds),
            partition: PartitionId::seq(seq),
        }
    }

    fn policy(warm: u64, cold: u64) -> LifecyclePolicy {
        LifecyclePolicy {
            warm_fan_in: warm,
            cold_fan_in: cold,
            max_age: None,
            footprint_budget: None,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swh-lifecycle-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tier_stream_bits_roundtrip() {
        for raw in [0u32, 1, 7, (1 << 30) - 1] {
            for tier in [Tier::Hot, Tier::Warm, Tier::Cold] {
                let s = tier.stream(raw);
                assert_eq!(Tier::of_stream(s), tier);
                assert_eq!(raw_stream(s), raw);
            }
        }
    }

    #[test]
    fn policy_spans() {
        let p = policy(60, 24);
        assert_eq!(p.span_of(PartitionId::seq(17)), (17, 17));
        assert_eq!(
            p.span_of(PartitionId {
                stream: WARM_STREAM_BIT,
                seq: 120
            }),
            (120, 179)
        );
        assert_eq!(
            p.span_of(PartitionId {
                stream: COLD_STREAM_BIT,
                seq: 0
            }),
            (0, 1439)
        );
    }

    #[test]
    fn compaction_builds_warm_and_cold_tiers() {
        let mut rng = seeded_rng(11);
        let cat = Arc::new(Catalog::new());
        let ds = DatasetId(1);
        // 8 hot partitions; warm fan-in 4, cold fan-in 2 -> one cold span.
        for s in 0..8u64 {
            cat.roll_in(key(1, s), sample(s * 100..(s + 1) * 100, &mut rng))
                .unwrap();
        }
        let mgr = LifecycleManager::new(Arc::clone(&cat), None, 1e-3);
        mgr.set_policy(ds, policy(4, 2));
        assert_eq!(mgr.backlog(ds), 8);
        let report = mgr.compact_dataset(ds, &mut rng).unwrap();
        assert_eq!(report.warm_built, 2);
        assert_eq!(report.cold_built, 1);
        assert_eq!(report.inputs_retired, 10); // 8 hot + 2 warm
        let parts = cat.partitions(ds).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(Tier::of_stream(parts[0].stream), Tier::Cold);
        // The cold sample covers all 800 parent elements, with truthful
        // k-ary merge fan-in in lineage.
        let cold = cat
            .get(PartitionKey {
                dataset: ds,
                partition: parts[0],
            })
            .unwrap();
        assert_eq!(cold.parent_size(), 800);
        assert_eq!(
            swh_core::lineage::last_merge_fan_in(cold.lineage()),
            Some(2)
        );
        assert_eq!(mgr.backlog(ds), 0);
    }

    #[test]
    fn incomplete_windows_stay_hot() {
        let mut rng = seeded_rng(12);
        let cat = Arc::new(Catalog::new());
        let ds = DatasetId(1);
        // 4-partition windows; seqs 0..3 complete, 4..6 incomplete.
        for s in 0..7u64 {
            cat.roll_in(key(1, s), sample(s * 100..(s + 1) * 100, &mut rng))
                .unwrap();
        }
        let mgr = LifecycleManager::new(Arc::clone(&cat), None, 1e-3);
        mgr.set_policy(ds, policy(4, 0));
        let report = mgr.compact_dataset(ds, &mut rng).unwrap();
        assert_eq!(report.warm_built, 1);
        let parts = cat.partitions(ds).unwrap();
        assert_eq!(parts.len(), 4); // 1 warm + 3 hot stragglers
        assert_eq!(
            parts
                .iter()
                .filter(|p| Tier::of_stream(p.stream) == Tier::Hot)
                .count(),
            3
        );
    }

    #[test]
    fn union_seq_range_uses_coarse_spans_and_rejects_misaligned() {
        let mut rng = seeded_rng(13);
        let cat = Arc::new(Catalog::new());
        let ds = DatasetId(1);
        for s in 0..10u64 {
            cat.roll_in(key(1, s), sample(s * 100..(s + 1) * 100, &mut rng))
                .unwrap();
        }
        let mgr = LifecycleManager::new(Arc::clone(&cat), None, 1e-3);
        mgr.set_policy(ds, policy(4, 0));
        mgr.compact_dataset(ds, &mut rng).unwrap();
        // Whole range: 2 warm spans + 2 hot leaves.
        let s = mgr.union_seq_range(ds, 0, 0..=9, &mut rng).unwrap();
        assert_eq!(s.parent_size(), 1000);
        // Range cutting into a compacted span is refused.
        let err = mgr.union_seq_range(ds, 0, 2..=9, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            LifecycleError::MisalignedSpan { lo: 0, hi: 3, .. }
        ));
        // A range of only hot leaves still works.
        let s = mgr.union_seq_range(ds, 0, 8..=9, &mut rng).unwrap();
        assert_eq!(s.parent_size(), 200);
    }

    #[test]
    fn retention_expires_by_age_and_budget() {
        let mut rng = seeded_rng(14);
        let cat = Arc::new(Catalog::new());
        let ds = DatasetId(1);
        for s in 0..10u64 {
            cat.roll_in(key(1, s), sample(s * 100..(s + 1) * 100, &mut rng))
                .unwrap();
        }
        let mgr = LifecycleManager::new(Arc::clone(&cat), None, 1e-3);
        // Age: keep only spans ending within 4 of the newest (seq 9).
        mgr.set_policy(
            ds,
            LifecyclePolicy {
                warm_fan_in: 0,
                cold_fan_in: 0,
                max_age: Some(4),
                footprint_budget: None,
            },
        );
        let expired = mgr.enforce_retention(ds).unwrap();
        assert_eq!(expired, 5); // seqs 0..=4: 4 + 4 < 9 .. 0 + 4 < 9
        assert_eq!(cat.partitions(ds).unwrap().len(), 5);
        // Budget: shrink to ~2 partitions' footprint.
        let foots = cat.footprints(ds).unwrap();
        let per = foots[0].1;
        mgr.set_policy(
            ds,
            LifecyclePolicy {
                warm_fan_in: 0,
                cold_fan_in: 0,
                max_age: None,
                footprint_budget: Some(per * 2),
            },
        );
        mgr.enforce_retention(ds).unwrap();
        let left = cat.partitions(ds).unwrap();
        assert_eq!(left.len(), 2);
        assert_eq!(left[0].seq, 8); // oldest went first
    }

    #[test]
    fn union_cache_hits_and_lru_eviction() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(15);
        let a = sample(0..500, &mut rng);
        let bytes_per = a.footprint_bytes() + 24 + ENTRY_BASE_BYTES;
        let cache: UnionCache<u64> = UnionCache::with_registry(&registry, bytes_per * 2);
        let ds = DatasetId(1);
        let k = |seq| CacheKey::new(ds, vec![PartitionId::seq(seq)], 32, 1e-3);
        let epoch = cache.epoch(ds);
        assert!(cache.insert(k(0), a.clone(), epoch));
        assert!(cache.insert(k(1), a.clone(), epoch));
        assert_eq!(cache.len(), 2);
        // Touch k0 so k1 is the LRU victim.
        assert!(cache.get(&k(0)).is_some());
        assert!(cache.insert(k(2), a.clone(), epoch));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k(1)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(&k(0)).is_some());
        // Key ordering is canonical: permuted selections share an entry.
        let k_ab = CacheKey::new(ds, vec![PartitionId::seq(5), PartitionId::seq(6)], 32, 1e-3);
        let k_ba = CacheKey::new(ds, vec![PartitionId::seq(6), PartitionId::seq(5)], 32, 1e-3);
        assert_eq!(k_ab, k_ba);
    }

    #[test]
    fn union_cache_epoch_rejects_stale_insert() {
        let registry = swh_obs::Registry::new();
        let mut rng = seeded_rng(16);
        let s = sample(0..100, &mut rng);
        let cache: UnionCache<u64> = UnionCache::with_registry(&registry, 1 << 20);
        let ds = DatasetId(1);
        let k = CacheKey::new(ds, vec![PartitionId::seq(0)], 32, 1e-3);
        let epoch = cache.epoch(ds);
        // A mutation lands between snapshot and insert.
        cache.invalidate_dataset(ds);
        assert!(!cache.insert(k.clone(), s.clone(), epoch));
        assert_eq!(cache.len(), 0);
        // With the fresh epoch the insert is accepted, and invalidation
        // drops it again.
        assert!(cache.insert(k.clone(), s, cache.epoch(ds)));
        assert_eq!(cache.invalidate_dataset(ds), 1);
        assert!(cache.get(&k).is_none());
    }

    #[test]
    fn tomb_roundtrip_and_recovery() {
        let mut rng = seeded_rng(17);
        let root = tmp_root("tomb");
        let store = DiskStore::open(&root).unwrap();
        let ds = DatasetId(3);
        let warm = PartitionId {
            stream: WARM_STREAM_BIT,
            seq: 0,
        };
        let tomb = TombRecord {
            dataset: ds,
            output: warm,
            inputs: vec![PartitionId::seq(0), PartitionId::seq(1)],
        };
        write_tomb(&store, &tomb).unwrap();
        assert_eq!(read_tomb(&tomb_path(&store, ds, warm)).unwrap(), tomb);
        assert_eq!(list_tombs(&store, ds).unwrap(), vec![tomb.clone()]);
        // Crash case A: tombstone but no durable output -> swept, inputs kept.
        for s in 0..2u64 {
            store
                .save(
                    PartitionKey {
                        dataset: ds,
                        partition: PartitionId::seq(s),
                    },
                    &sample(s * 100..(s + 1) * 100, &mut rng),
                )
                .unwrap();
        }
        let rep = recover_store(&store).unwrap();
        assert_eq!(rep.orphaned_tombs, 1);
        assert_eq!(store.list(ds).unwrap().len(), 2);
        // Crash case B: durable output, inputs not yet retired -> retired.
        write_tomb(&store, &tomb).unwrap();
        store
            .save(
                PartitionKey {
                    dataset: ds,
                    partition: warm,
                },
                &sample(0..200, &mut rng),
            )
            .unwrap();
        let rep = recover_store(&store).unwrap();
        assert_eq!(rep.retired_inputs, 2);
        assert_eq!(rep.validated, 1);
        let keys = store.list(ds).unwrap();
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].partition, warm);
        // Idempotent.
        let rep = recover_store(&store).unwrap();
        assert_eq!(
            rep,
            RecoveryReport {
                orphaned_tombs: 0,
                retired_inputs: 0,
                validated: 1
            }
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn policies_persist_roundtrip() {
        let root = tmp_root("policies");
        std::fs::create_dir_all(&root).unwrap();
        let mut table = BTreeMap::new();
        table.insert(DatasetId(1), policy(4, 2));
        table.insert(
            DatasetId(2),
            LifecyclePolicy {
                warm_fan_in: 60,
                cold_fan_in: 24,
                max_age: Some(10_000),
                footprint_budget: Some(1 << 30),
            },
        );
        save_policies(&root, &table).unwrap();
        assert_eq!(load_policies(&root).unwrap(), table);
        assert!(load_policies(&tmp_root("policies-missing"))
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn background_compactor_sweeps_and_stops() {
        let mut rng = seeded_rng(18);
        let cat = Arc::new(Catalog::new());
        let ds = DatasetId(1);
        for s in 0..4u64 {
            cat.roll_in(key(1, s), sample(s * 100..(s + 1) * 100, &mut rng))
                .unwrap();
        }
        let mgr = Arc::new(LifecycleManager::new(Arc::clone(&cat), None, 1e-3));
        mgr.set_policy(ds, policy(4, 0));
        let handle = mgr.spawn_background(Duration::from_millis(5), 99);
        // Wait (bounded) for the first sweep to compact the window.
        for _ in 0..400 {
            if cat.partitions(ds).map(|p| p.len()) == Ok(1) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        let parts = cat.partitions(ds).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(Tier::of_stream(parts[0].stream), Tier::Warm);
    }

    #[test]
    fn status_json_reports_tiers() {
        let mut rng = seeded_rng(19);
        let cat = Arc::new(Catalog::new());
        for s in 0..5u64 {
            cat.roll_in(key(1, s), sample(s * 10..(s + 1) * 10, &mut rng))
                .unwrap();
        }
        let mgr = LifecycleManager::new(Arc::clone(&cat), None, 1e-3);
        mgr.set_policy(DatasetId(1), policy(4, 0));
        mgr.compact_dataset(DatasetId(1), &mut seeded_rng(20))
            .unwrap();
        let json = mgr.status_json();
        assert!(json.contains("\"hot\":1"), "{json}");
        assert!(json.contains("\"warm\":1"), "{json}");
        assert!(json.contains("\"warm_fan_in\":4"), "{json}");
    }
}
