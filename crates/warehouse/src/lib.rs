#![warn(missing_docs)]

//! The sample data warehouse (§2 of the paper): a catalog of per-partition
//! samples that "shadows" a full-scale warehouse.
//!
//! Data sets are bags of values that arrive in batches or streams and are
//! divided into disjoint partitions. Each partition is sampled independently
//! (possibly in parallel) with Algorithm HB or HR; the resulting
//! [`swh_core::Sample`]s are rolled into the warehouse, retrieved and merged
//! on demand into a uniform sample of any union of partitions, and rolled
//! out when the underlying data leaves the full-scale warehouse.
//!
//! Layers:
//!
//! * [`ids`] — dataset/partition identifiers.
//! * [`catalog`] — thread-safe in-memory registry of partition samples.
//! * [`ingest`] — stream splitting (round-robin/hash), ratio-triggered
//!   on-the-fly partitioning, and sampler configuration.
//! * [`parallel`] — sampling many partitions on scoped worker threads.
//! * [`codec`] + [`store`] — compact binary persistence of samples.
//! * [`durable`] — crash-safe atomic file replacement (fsync discipline,
//!   orphan-temp recovery, corruption quarantine) shared by every store
//!   write path, with injectable failpoints for crash testing.
//! * [`window`] — sliding-window roll-in/roll-out (daily partitions merged
//!   into weekly/monthly samples, approximating stream-sampling schemes).
//! * [`lifecycle`] — background compaction of hot partitions into warm/cold
//!   roll-ups, the merged-union cache, and retention policies.
//! * [`warehouse`] — the [`SampleWarehouse`] facade tying it together.

pub mod catalog;
pub mod codec;
pub mod durable;
pub mod fullstore;
pub mod ids;
pub mod ingest;
pub mod lifecycle;
pub mod maintenance;
pub mod parallel;
pub mod registry;
pub mod store;
pub mod warehouse;
pub mod window;

pub use catalog::{Catalog, CatalogError, PartitionEntry};
pub use codec::{
    decode_sample, encode_sample, encode_sample_with_events, lineage_of_bytes, summary_of_bytes,
    CodecError, SampleSummary, ValueCodec,
};
pub use durable::{atomic_write, sweep_orphan_tmp, CrashPoint};
pub use fullstore::FullStore;
pub use ids::{DatasetId, PartitionId, PartitionKey};
pub use ingest::{
    RatioBoundedPartitioner, SamplerConfig, SplitPolicy, StreamRouter, TimePartitioner,
};
pub use lifecycle::{
    recover_store, CacheKey, CompactionReport, CompactorHandle, LifecycleError, LifecycleManager,
    LifecyclePolicy, RecoveryReport, Tier, TombRecord, UnionCache, COLD_STREAM_BIT,
    WARM_STREAM_BIT,
};
pub use maintenance::IncrementalSample;
pub use parallel::sample_partitions_parallel;
pub use registry::DatasetRegistry;
pub use store::DiskStore;
pub use warehouse::{
    publish_dataset_quality, LoadReport, QualityReport, SampleWarehouse, WarehouseError,
};
pub use window::{SlidingWindow, TumblingWindow};
