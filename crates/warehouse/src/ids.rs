//! Identifiers for data sets and their partitions.
//!
//! Following Fig. 1 of the paper, a data set `D` may be parallelized across
//! CPUs as `D_1, D_2, ...` and each stream partitioned temporally into
//! `D_{i,1}, D_{i,2}, ...`. A [`PartitionId`] carries both coordinates; the
//! common single-stream case uses stream 0.

use std::fmt;

/// Identifier of a data set within the warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Identifier of one partition of a data set: `(stream, seq)` — the paper's
/// `D_{i,j}` with `i` the parallel stream and `j` the temporal sequence
/// number (e.g. the day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId {
    /// Parallel-stream index (`i` in `D_{i,j}`).
    pub stream: u32,
    /// Temporal/sequence index (`j` in `D_{i,j}`).
    pub seq: u64,
}

impl PartitionId {
    /// Partition `j` of the single (0th) stream.
    pub fn seq(seq: u64) -> Self {
        Self { stream: 0, seq }
    }

    /// Partition `(i, j)`.
    pub fn new(stream: u32, seq: u64) -> Self {
        Self { stream, seq }
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.stream, self.seq)
    }
}

/// Fully qualified partition key: dataset + partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionKey {
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Partition within the dataset.
    pub partition: PartitionId,
}

impl fmt::Display for PartitionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dataset, self.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let key = PartitionKey {
            dataset: DatasetId(3),
            partition: PartitionId::new(1, 7),
        };
        assert_eq!(key.to_string(), "D3(1,7)");
        assert_eq!(PartitionId::seq(5).to_string(), "(0,5)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(PartitionId::new(0, 9) < PartitionId::new(1, 0));
        assert!(PartitionId::seq(1) < PartitionId::seq(2));
    }
}
