//! Corruption matrix for both persistence formats: every class of on-disk
//! damage (truncated header, truncated payload, bit flip, wrong magic,
//! trailing bytes) must map to the right `StoreError`/`CodecError` — never
//! a panic, never a silent success.

use std::fs;
use std::path::PathBuf;
use swh_core::footprint::FootprintPolicy;
use swh_core::hybrid_reservoir::HybridReservoir;
use swh_core::sampler::Sampler;
use swh_rand::seeded_rng;
use swh_warehouse::codec::crc32;
use swh_warehouse::store::StoreError;
use swh_warehouse::{CodecError, DatasetId, DiskStore, FullStore, PartitionId, PartitionKey};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swh-corrupt-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn key() -> PartitionKey {
    PartitionKey {
        dataset: DatasetId(1),
        partition: PartitionId::seq(0),
    }
}

fn codec_err(e: StoreError) -> CodecError {
    match e {
        StoreError::Codec(c) => c,
        other => panic!("expected codec error, got {other:?}"),
    }
}

/// Write a valid sample, overwrite its file with `mutate(bytes)`, and
/// return the load error.
fn disk_store_error(tag: &str, mutate: impl FnOnce(Vec<u8>) -> Vec<u8>) -> CodecError {
    let mut rng = seeded_rng(1);
    let store = DiskStore::open(tmp_root(tag)).unwrap();
    let sample = HybridReservoir::new(FootprintPolicy::with_value_budget(32))
        .sample_batch(0..5000u64, &mut rng);
    store.save(key(), &sample).unwrap();
    let path = store.root().join("ds1").join("p0_0.swhs");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, mutate(bytes)).unwrap();
    let err = codec_err(store.load::<u64>(key()).unwrap_err());
    fs::remove_dir_all(store.root()).unwrap();
    err
}

#[test]
fn disk_store_truncated_header() {
    // Shorter than the CRC trailer itself: nothing to verify against.
    let err = disk_store_error("short", |b| b[..2].to_vec());
    assert_eq!(err, CodecError::UnexpectedEof);
}

#[test]
fn disk_store_truncated_payload() {
    // Cut mid-payload: the relocated trailer no longer matches.
    let err = disk_store_error("cut", |b| b[..b.len() - 10].to_vec());
    assert_eq!(err, CodecError::ChecksumMismatch);
}

#[test]
fn disk_store_bit_flip() {
    let err = disk_store_error("flip", |mut b| {
        let mid = b.len() / 2;
        b[mid] ^= 0x08;
        b
    });
    assert_eq!(err, CodecError::ChecksumMismatch);
}

#[test]
fn disk_store_wrong_magic() {
    // Valid CRC over a payload with the wrong magic: the header check must
    // catch what the checksum cannot.
    let err = disk_store_error("magic", |_| {
        let mut b = b"XXXX-not-a-sample".to_vec();
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    });
    assert_eq!(err, CodecError::BadHeader);
}

#[test]
fn disk_store_trailing_bytes() {
    // Append a byte after the encoded payload and re-seal with a fresh
    // CRC: checksum passes, so structural validation must reject. Under
    // format v2 the stray byte lands in the lineage length footer.
    let err = disk_store_error("trailing", |b| {
        let mut payload = b[..b.len() - 4].to_vec();
        payload.push(0xAB);
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        payload
    });
    assert!(matches!(err, CodecError::Corrupt(_)), "{err:?}");
    // A byte inserted *before* the lineage section still trips the body
    // exhaustion check.
    let err = disk_store_error("trailing-body", |b| {
        let mut payload = b[..b.len() - 4].to_vec();
        // Locate the lineage section via its footer and grow the body.
        let footer_at = payload.len() - 4;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&payload[footer_at..]);
        let lin_len = u32::from_le_bytes(raw) as usize;
        payload.insert(footer_at - lin_len, 0xAB);
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        payload
    });
    assert_eq!(err, CodecError::Corrupt("trailing bytes"));
}

/// Same harness for the full-scale store (`.vals` format).
fn full_store_error(tag: &str, mutate: impl FnOnce(Vec<u8>) -> Vec<u8>) -> CodecError {
    let store = FullStore::open(tmp_root(tag)).unwrap();
    store
        .write_partition(key(), (0..100).map(|v| v as i64))
        .unwrap();
    let path = store.root().join("ds1").join("p0_0.vals");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, mutate(bytes)).unwrap();
    let err = codec_err(store.read_partition::<i64>(key()).unwrap_err());
    fs::remove_dir_all(store.root()).unwrap();
    err
}

/// Re-seal a `.vals` file after payload edits: count stays, CRC refreshed.
fn reseal_vals(header: &[u8], payload: Vec<u8>) -> Vec<u8> {
    let mut out = header[..12].to_vec();
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

#[test]
fn full_store_truncated_header() {
    let err = full_store_error("short", |b| b[..8].to_vec());
    assert_eq!(err, CodecError::UnexpectedEof);
}

#[test]
fn full_store_truncated_payload() {
    let err = full_store_error("cut", |b| b[..b.len() - 10].to_vec());
    assert_eq!(err, CodecError::ChecksumMismatch);
}

#[test]
fn full_store_bit_flip() {
    let err = full_store_error("flip", |mut b| {
        let n = b.len();
        b[n - 3] ^= 0x10;
        b
    });
    assert_eq!(err, CodecError::ChecksumMismatch);
}

#[test]
fn full_store_wrong_magic() {
    let err = full_store_error("magic", |mut b| {
        b[0..4].copy_from_slice(b"XXXX");
        b
    });
    assert_eq!(err, CodecError::BadHeader);
}

#[test]
fn full_store_trailing_bytes() {
    // Extra bytes past the declared count, CRC re-sealed so only the
    // exhaustion check can reject.
    let err = full_store_error("trailing", |b| {
        let mut payload = b[16..].to_vec();
        payload.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        reseal_vals(&b, payload)
    });
    assert_eq!(err, CodecError::Corrupt("trailing bytes"));
}
