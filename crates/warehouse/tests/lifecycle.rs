//! Integration contract of the partition lifecycle: a compacted-then-
//! unioned span is distributionally identical to the leaf union (uniform
//! inclusion, chi-square tested), the no-compaction path is byte-identical
//! to a plain catalog union, the merged-union cache never serves a stale
//! result under concurrent roll-ins, retention composes with compaction,
//! and (with `--features failpoints`) a crash at every step of the
//! compaction write protocol leaves a recoverable, fsck-clean store.

use std::sync::Arc;
use swh_core::footprint::FootprintPolicy;
use swh_core::hybrid_reservoir::HybridReservoir;
use swh_core::sampler::Sampler;
use swh_rand::seeded_rng;
use swh_rand::stats::{chi_square_p_value, chi_square_statistic};
use swh_warehouse::catalog::Catalog;
use swh_warehouse::ids::{DatasetId, PartitionId, PartitionKey};
use swh_warehouse::lifecycle::{LifecycleManager, LifecyclePolicy, UnionCache};

const DS: DatasetId = DatasetId(1);

fn key(seq: u64) -> PartitionKey {
    PartitionKey {
        dataset: DS,
        partition: PartitionId::seq(seq),
    }
}

fn policy(warm: u64, cold: u64) -> LifecyclePolicy {
    LifecyclePolicy {
        warm_fan_in: warm,
        cold_fan_in: cold,
        max_age: None,
        footprint_budget: None,
    }
}

/// `parts` hot partitions of `per_part` consecutive values each, sampled
/// at reservoir budget `n_f`, rolled into a fresh catalog.
fn seeded_catalog(
    parts: u64,
    per_part: u64,
    n_f: u64,
    rng: &mut rand::rngs::SmallRng,
) -> Arc<Catalog<u64>> {
    let catalog = Arc::new(Catalog::new());
    for seq in 0..parts {
        let lo = seq * per_part;
        let sample = HybridReservoir::new(FootprintPolicy::with_value_budget(n_f))
            .sample_batch(lo..lo + per_part, rng);
        catalog.roll_in(key(seq), sample).unwrap();
    }
    catalog
}

/// The headline distributional property: rolling eight hot partitions
/// into warm and cold tiers and unioning the roll-up must leave every
/// element of the underlying span equally likely to appear — the same
/// uniformity guarantee the flat leaf union carries. Chi-square over the
/// whole domain across repeated independently-seeded trials.
#[test]
fn compacted_union_is_distributionally_uniform() {
    const PARTS: u64 = 8;
    const PER_PART: u64 = 50;
    const DOMAIN: usize = (PARTS * PER_PART) as usize;
    const TRIALS: u64 = 2_000;

    let mut incl = vec![0u64; DOMAIN];
    let mut drawn = 0u64;
    for trial in 0..TRIALS {
        let mut rng = seeded_rng(0xA11CE + trial);
        let catalog = seeded_catalog(PARTS, PER_PART, 16, &mut rng);
        let manager = LifecycleManager::new(Arc::clone(&catalog), None, 1e-3);
        manager.set_policy(DS, policy(4, 2));
        let report = manager.sweep(&mut rng).unwrap();
        assert_eq!(report.warm_built, 2, "trial {trial}");
        assert_eq!(report.cold_built, 1, "trial {trial}");
        // Only the single cold roll-up remains; the union reads it alone.
        assert_eq!(catalog.partitions(DS).unwrap().len(), 1);
        let merged = catalog.union_sample(DS, |_| true, 1e-3, &mut rng).unwrap();
        assert_eq!(merged.parent_size(), PARTS * PER_PART, "trial {trial}");
        for (v, c) in merged.histogram().iter() {
            assert_eq!(c, 1, "distinct inputs stay distinct");
            incl[*v as usize] += 1;
            drawn += 1;
        }
    }
    let expect = drawn as f64 / DOMAIN as f64;
    let exp = vec![expect; DOMAIN];
    let stat = chi_square_statistic(&incl, &exp);
    let pv = chi_square_p_value(stat, (DOMAIN - 1) as f64);
    assert!(
        pv > 1e-4,
        "compacted union not uniform: chi2={stat:.1} p={pv:.2e}"
    );
}

/// When no window is complete, a sweep must be a perfect no-op: the union
/// drawn afterwards is byte-identical to one drawn from an untouched
/// catalog with the same RNG seed.
#[test]
fn no_compaction_path_is_byte_identical() {
    let mut build_rng = seeded_rng(0xBEEF);
    let plain = seeded_catalog(8, 50, 16, &mut build_rng);
    let mut build_rng = seeded_rng(0xBEEF);
    let swept = seeded_catalog(8, 50, 16, &mut build_rng);

    let manager = LifecycleManager::new(Arc::clone(&swept), None, 1e-3);
    // Fan-in larger than the partition count: no complete window exists.
    manager.set_policy(DS, policy(16, 16));
    let mut sweep_rng = seeded_rng(1);
    let report = manager.sweep(&mut sweep_rng).unwrap();
    assert_eq!(report.warm_built + report.cold_built + report.expired, 0);

    let mut rng_a = seeded_rng(0x5eed);
    let mut rng_b = seeded_rng(0x5eed);
    let a = plain.union_sample(DS, |_| true, 1e-3, &mut rng_a).unwrap();
    let b = swept.union_sample(DS, |_| true, 1e-3, &mut rng_b).unwrap();
    assert_eq!(a, b, "idle sweep must not perturb the union");
}

/// The merged-union cache under a concurrent writer: a reader unions in a
/// loop while another thread rolls partitions in one by one. Every union
/// the reader sees must be consistent with *some* prefix of the roll-ins
/// (parent size is a multiple of the per-partition row count), and once
/// the writer joins, the next union must see all partitions — a stale
/// cache hit would pin the old parent size.
#[test]
fn union_cache_is_never_stale_under_concurrent_roll_in() {
    const PER_PART: u64 = 40;
    const TOTAL: u64 = 12;

    let mut rng = seeded_rng(0xCAC4E);
    let catalog = seeded_catalog(2, PER_PART, 16, &mut rng);
    let cache = Arc::new(UnionCache::with_registry(
        &swh_obs::Registry::new(),
        1 << 20,
    ));
    catalog.enable_union_cache(Arc::clone(&cache));

    let writer_catalog = Arc::clone(&catalog);
    let writer = std::thread::spawn(move || {
        let mut rng = seeded_rng(0xF00D);
        for seq in 2..TOTAL {
            let lo = seq * PER_PART;
            let sample = HybridReservoir::new(FootprintPolicy::with_value_budget(16))
                .sample_batch(lo..lo + PER_PART, &mut rng);
            writer_catalog.roll_in(key(seq), sample).unwrap();
            std::thread::yield_now();
        }
    });

    let mut reader_rng = seeded_rng(0xFEED);
    loop {
        let merged = catalog
            .union_sample(DS, |_| true, 1e-3, &mut reader_rng)
            .unwrap();
        assert_eq!(
            merged.parent_size() % PER_PART,
            0,
            "union must cover a whole prefix of roll-ins"
        );
        if merged.parent_size() == TOTAL * PER_PART {
            break;
        }
        std::thread::yield_now();
    }
    writer.join().unwrap();

    // All roll-ins visible; a repeat union is now a cache hit and still
    // reports the full parent population.
    let before = cache.stats();
    let merged = catalog
        .union_sample(DS, |_| true, 1e-3, &mut reader_rng)
        .unwrap();
    let merged2 = catalog
        .union_sample(DS, |_| true, 1e-3, &mut reader_rng)
        .unwrap();
    let after = cache.stats();
    assert_eq!(merged.parent_size(), TOTAL * PER_PART);
    assert_eq!(merged2, merged, "cache hit must be byte-identical");
    assert!(after.1 > before.1, "repeat union must hit the cache");
}

/// Retention composes with compaction in one sweep: hot partitions roll
/// into warm spans, and spans whose age exceeds the policy expire — while
/// recent data keeps answering unions.
#[test]
fn retention_and_compaction_compose_in_one_sweep() {
    let mut rng = seeded_rng(0xDEAD);
    let catalog = seeded_catalog(8, 50, 16, &mut rng);
    let manager = LifecycleManager::new(Arc::clone(&catalog), None, 1e-3);
    manager.set_policy(
        DS,
        LifecyclePolicy {
            warm_fan_in: 2,
            cold_fan_in: 16,
            max_age: Some(3),
            footprint_budget: None,
        },
    );
    let report = manager.sweep(&mut rng).unwrap();
    assert_eq!(report.warm_built, 4, "8 hot -> 4 warm");
    assert!(report.expired > 0, "old warm spans must expire");
    let remaining = catalog.partitions(DS).unwrap();
    assert!(!remaining.is_empty(), "recent spans must survive");
    let merged = catalog.union_sample(DS, |_| true, 1e-3, &mut rng).unwrap();
    assert!(merged.parent_size() < 400, "expired rows left the union");
    assert!(merged.parent_size() >= 100, "recent rows still unioned");
}

/// Crash matrix over the compaction write protocol (needs
/// `--features failpoints`): kill the first durable write of a sweep at
/// every [`CrashPoint`], then reopen the store — recovery must leave all
/// hot inputs authoritative, no tombstones, and a working union. The
/// post-output crash windows (output durable, inputs not yet retired) are
/// driven directly through the protocol's public pieces.
#[cfg(feature = "failpoints")]
mod crash_matrix {
    use super::*;
    use std::path::PathBuf;
    use swh_core::lineage::last_merge_fan_in;
    use swh_core::merge::merge_all;
    use swh_warehouse::durable::{fault, CrashPoint};
    use swh_warehouse::lifecycle::{list_tombs, recover_store, write_tomb, TombRecord};
    use swh_warehouse::store::DiskStore;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swh-lifecycle-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Rebuild a catalog from whatever the store holds and union it.
    fn reopen_and_union(root: &PathBuf, expect_rows: u64) {
        let store = DiskStore::open(root).unwrap();
        recover_store(&store).unwrap();
        let catalog: Catalog<u64> = Catalog::new();
        for k in store.list(DS).unwrap() {
            catalog.roll_in(k, store.load(k).unwrap()).unwrap();
        }
        let mut rng = seeded_rng(3);
        let merged = catalog.union_sample(DS, |_| true, 1e-3, &mut rng).unwrap();
        assert_eq!(merged.parent_size(), expect_rows);
    }

    #[test]
    fn crash_during_tombstone_write_leaves_hot_inputs_authoritative() {
        for point in [
            CrashPoint::AfterTempCreate,
            CrashPoint::AfterPartialPayload,
            CrashPoint::AfterPayload,
            CrashPoint::BeforeRename,
            CrashPoint::AfterRename,
            CrashPoint::AfterDirSync,
        ] {
            let root = tmp_root(&format!("tomb-{point:?}"));
            let store = DiskStore::open(&root).unwrap();
            let mut rng = seeded_rng(7);
            let catalog = seeded_catalog(4, 50, 16, &mut rng);
            for seq in 0..4 {
                store
                    .save(key(seq), &catalog.get(key(seq)).unwrap())
                    .unwrap();
            }
            let manager = LifecycleManager::new(Arc::clone(&catalog), Some(store.clone()), 1e-3);
            manager.set_policy(DS, policy(2, 2));
            fault::arm(point);
            let err = manager.sweep(&mut rng);
            fault::disarm();
            assert!(err.is_err(), "{point:?}: armed sweep must fail");

            // The catalog was never touched — the failed protocol ran
            // strictly before any catalog mutation.
            assert_eq!(catalog.partitions(DS).unwrap().len(), 4, "{point:?}");

            // Reopen: recovery sweeps whatever the crash left, the four
            // hot inputs stay the source of truth, the union still works.
            let reopened = DiskStore::open(&root).unwrap();
            recover_store(&reopened).unwrap();
            assert_eq!(list_tombs(&reopened, DS).unwrap().len(), 0, "{point:?}");
            assert_eq!(reopened.list(DS).unwrap().len(), 4, "{point:?}");
            reopen_and_union(&root, 200);
            std::fs::remove_dir_all(&root).ok();
        }
    }

    #[test]
    fn crash_after_output_durable_retires_inputs_on_recovery() {
        let root = tmp_root("post-output");
        let store = DiskStore::open(&root).unwrap();
        let mut rng = seeded_rng(11);
        let catalog = seeded_catalog(4, 50, 16, &mut rng);
        for seq in 0..4 {
            store
                .save(key(seq), &catalog.get(key(seq)).unwrap())
                .unwrap();
        }
        // Run the protocol by hand up to the crash: tombstone durable,
        // merged output durable, inputs 0 and 1 NOT yet removed.
        let warm = PartitionId {
            stream: swh_warehouse::WARM_STREAM_BIT,
            seq: 0,
        };
        let inputs = vec![PartitionId::seq(0), PartitionId::seq(1)];
        write_tomb(
            &store,
            &TombRecord {
                dataset: DS,
                output: warm,
                inputs: inputs.clone(),
            },
        )
        .unwrap();
        let merged = merge_all(
            vec![catalog.get(key(0)).unwrap(), catalog.get(key(1)).unwrap()],
            1e-3,
            &mut rng,
        )
        .unwrap();
        store
            .save(
                PartitionKey {
                    dataset: DS,
                    partition: warm,
                },
                &merged,
            )
            .unwrap();

        // Reopen: recovery must finish the retirement.
        let reopened = DiskStore::open(&root).unwrap();
        let report = recover_store(&reopened).unwrap();
        assert_eq!(report.retired_inputs, 2);
        assert_eq!(report.validated, 1);
        assert_eq!(report.orphaned_tombs, 0);
        // Idempotent.
        let again = recover_store(&reopened).unwrap();
        assert_eq!(again.retired_inputs, 0);

        // The tombstone survives for fsck and matches the output lineage.
        let tombs = list_tombs(&reopened, DS).unwrap();
        assert_eq!(tombs.len(), 1);
        let lineage = reopened
            .lineage(PartitionKey {
                dataset: DS,
                partition: warm,
            })
            .unwrap();
        assert_eq!(
            last_merge_fan_in(&lineage),
            Some(tombs[0].inputs.len() as u64)
        );

        // warm(0..2) + hot 2 + hot 3 answer the full span.
        reopen_and_union(&root, 200);
        std::fs::remove_dir_all(&root).ok();
    }
}
