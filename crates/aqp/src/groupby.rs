//! Per-group estimates from one uniform sample.

use crate::estimators::{estimate_count, estimate_sum, Estimate, Numeric};
use std::collections::BTreeMap;
use swh_core::sample::Sample;
use swh_core::value::SampleValue;

/// Estimate `SELECT g, COUNT(*) GROUP BY g` where `g = group(v)`.
///
/// Returns one [`Estimate`] per group key observed in the sample, keyed in
/// sorted order. Groups absent from the sample are (necessarily) absent
/// from the output; with a uniform sample the missing groups are exactly
/// those whose population frequency is below the sample's resolution.
pub fn group_by_count<T: SampleValue, K: Ord + Clone>(
    sample: &Sample<T>,
    mut group: impl FnMut(&T) -> K,
) -> BTreeMap<K, Estimate> {
    // Collect the distinct group keys present, then estimate each via the
    // shared COUNT machinery so all provenance logic lives in one place.
    let mut keys: Vec<K> = sample.histogram().iter().map(|(v, _)| group(v)).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let est = estimate_count(sample, |v| group(v) == k);
            (k, est)
        })
        .collect()
}

/// Estimate `SELECT g, SUM(v) GROUP BY g` where `g = group(v)`.
pub fn group_by_sum<T: Numeric, K: Ord + Clone>(
    sample: &Sample<T>,
    mut group: impl FnMut(&T) -> K,
) -> BTreeMap<K, Estimate> {
    let mut keys: Vec<K> = sample.histogram().iter().map(|(v, _)| group(v)).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let est = estimate_sum(sample, |v| group(v) == k);
            (k, est)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    #[test]
    fn exhaustive_group_counts_exact() {
        let mut rng = seeded_rng(1);
        let values: Vec<u64> = (0..900u64).map(|i| i % 3).collect();
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(64))
            .sample_batch(values, &mut rng);
        let groups = group_by_count(&s, |v| *v);
        assert_eq!(groups.len(), 3);
        for e in groups.values() {
            assert!(e.exact);
            assert_eq!(e.value, 300.0);
        }
    }

    #[test]
    fn sampled_group_counts_sum_to_parent() {
        // A reservoir sample's per-group COUNT estimates add up to the
        // parent size exactly (each sampled element contributes N/k).
        let mut rng = seeded_rng(2);
        let n = 100_000u64;
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(1024))
            .sample_batch(0..n, &mut rng);
        let groups = group_by_count(&s, |v| v % 5);
        let total: f64 = groups.values().map(|e| e.value).sum();
        assert!((total - n as f64).abs() < 1e-6, "total {total}");
        // Each group is ~20% of the population.
        for (g, e) in &groups {
            assert!(
                (e.value / n as f64 - 0.2).abs() < 0.05,
                "group {g}: {}",
                e.value
            );
            assert!(!e.exact);
            assert!(e.std_error > 0.0);
        }
    }

    #[test]
    fn group_by_sum_exhaustive_exact() {
        let mut rng = seeded_rng(4);
        // Groups 0,1,2 with values g, g+10, g+20 appearing 100x each.
        let values: Vec<u64> = (0..900u64).map(|i| (i % 3) + 10 * (i % 9 / 3)).collect();
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(64))
            .sample_batch(values.clone(), &mut rng);
        let groups = group_by_sum(&s, |v| v % 10);
        let mut truth: std::collections::BTreeMap<u64, f64> = Default::default();
        for v in &values {
            *truth.entry(v % 10).or_default() += *v as f64;
        }
        for (g, e) in &groups {
            assert!(e.exact);
            assert_eq!(e.value, truth[g], "group {g}");
        }
    }

    #[test]
    fn group_by_sum_sampled_near_truth() {
        let mut rng = seeded_rng(5);
        let n = 100_000u64;
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(4096))
            .sample_batch(0..n, &mut rng);
        let groups = group_by_sum(&s, |v| v % 2);
        for (g, e) in &groups {
            let truth: f64 = (0..n).filter(|v| v % 2 == *g).map(|v| v as f64).sum();
            assert!(
                (e.value - truth).abs() < 6.0 * e.std_error,
                "group {g}: {} vs {truth} (se {})",
                e.value,
                e.std_error
            );
        }
    }

    #[test]
    fn group_estimates_cover_truth() {
        let mut rng = seeded_rng(3);
        let n = 50_000u64;
        // Skewed groups: group g has frequency proportional to g+1.
        let values: Vec<u64> = (0..n).map(|i| (i * i) % 4).collect();
        let mut truth = std::collections::BTreeMap::new();
        for v in &values {
            *truth.entry(v % 4).or_insert(0u64) += 1;
        }
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(2048))
            .sample_batch(values, &mut rng);
        let groups = group_by_count(&s, |v| v % 4);
        for (g, e) in &groups {
            let t = truth[g] as f64;
            let (lo, hi) = e.confidence_interval(0.999);
            assert!(
                (lo..=hi).contains(&t),
                "group {g}: truth {t} outside [{lo}, {hi}]"
            );
        }
    }
}
