#![warn(missing_docs)]

//! Approximate query processing over warehouse samples.
//!
//! The paper's motivation (§1): a sample warehouse exists "to support quick
//! approximate analytics and metadata discovery". This crate provides the
//! estimators that consume [`swh_core::Sample`]s, using each sample's
//! provenance to apply the right estimation theory:
//!
//! * **Exhaustive** samples answer exactly (zero-width intervals);
//! * **Bernoulli(q)** samples use Horvitz–Thompson estimators (`Σ/q`);
//! * **Reservoir** (simple random) samples use classical SRS estimators
//!   with finite-population correction.
//!
//! [`estimators`] covers COUNT/SUM/AVG with predicates and normal-theory
//! confidence intervals, [`groupby`] produces per-group estimates,
//! [`distinct`] estimates the number of distinct values (naive and Chao84),
//! [`quantiles`] gives order-statistic quantile intervals, [`mod@profile`]
//! assembles column profiles for metadata discovery, and [`stratified`]
//! aggregates over stratified samples with per-stratum weighting (§4.1 of
//! the paper).

pub mod distinct;
pub mod estimators;
pub mod groupby;
pub mod profile;
pub mod quantiles;
pub mod query;
pub mod stratified;

pub use distinct::{distinct_chao, distinct_naive};
pub use estimators::{
    estimate_avg, estimate_count, estimate_sum, estimate_variance, Estimate, Numeric,
};
pub use groupby::{group_by_count, group_by_sum};
pub use profile::{profile, ColumnProfile};
pub use quantiles::{estimate_median, estimate_quantile, QuantileEstimate};
pub use query::{Aggregate, Predicate, Query};
pub use stratified::{stratified_count, stratified_sum};
