//! A small aggregate-query AST over integer columns, executable both
//! **approximately** (against a warehouse sample, with a confidence
//! interval) and **exactly** (against a full scan). Having one query value
//! serve both paths lets the tooling report approximation accuracy —
//! exactly the "quick approximate answers" trade the paper's introduction
//! describes.

use crate::estimators::{estimate_avg, estimate_count, estimate_sum, Estimate};
use crate::quantiles::estimate_quantile;
use swh_core::sample::Sample;

/// Predicate over `i64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches everything.
    True,
    /// `value % modulus == remainder` (Euclidean remainder).
    ModEq {
        /// Positive modulus.
        modulus: i64,
        /// Target remainder.
        remainder: i64,
    },
    /// `lo ≤ value ≤ hi`.
    Between {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Membership in an explicit set.
    In(Vec<i64>),
    /// Logical negation.
    Not(Box<Predicate>),
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against one value.
    pub fn eval(&self, v: i64) -> bool {
        match self {
            Predicate::True => true,
            Predicate::ModEq { modulus, remainder } => v.rem_euclid(*modulus) == *remainder,
            Predicate::Between { lo, hi } => (*lo..=*hi).contains(&v),
            Predicate::In(set) => set.contains(&v),
            Predicate::Not(p) => !p.eval(v),
            Predicate::And(a, b) => a.eval(v) && b.eval(v),
            Predicate::Or(a, b) => a.eval(v) || b.eval(v),
        }
    }

    /// Parse the compact textual form used by the CLI:
    /// `true`, `mod:M:R`, `between:LO:HI`, `in:V1,V2,...`, `not:(...)` is
    /// not supported textually (compose programmatically).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.splitn(3, ':');
        match parts.next() {
            Some("true") | Some("") | None => Ok(Predicate::True),
            Some("mod") => {
                let m: i64 = parts
                    .next()
                    .ok_or("mod needs a modulus")?
                    .parse()
                    .map_err(|_| "bad modulus")?;
                let r: i64 = parts
                    .next()
                    .ok_or("mod needs a remainder")?
                    .parse()
                    .map_err(|_| "bad remainder")?;
                if m <= 0 {
                    return Err("modulus must be positive".into());
                }
                Ok(Predicate::ModEq {
                    modulus: m,
                    remainder: r,
                })
            }
            Some("between") => {
                let lo: i64 = parts
                    .next()
                    .ok_or("between needs a lower bound")?
                    .parse()
                    .map_err(|_| "bad lower bound")?;
                let hi: i64 = parts
                    .next()
                    .ok_or("between needs an upper bound")?
                    .parse()
                    .map_err(|_| "bad upper bound")?;
                Ok(Predicate::Between { lo, hi })
            }
            Some("in") => {
                let list = parts.next().ok_or("in needs a value list")?;
                let values: Result<Vec<i64>, _> =
                    list.split(',').map(|t| t.trim().parse::<i64>()).collect();
                Ok(Predicate::In(values.map_err(|_| "bad value in list")?))
            }
            Some(other) => Err(format!("unknown predicate '{other}'")),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "*"),
            Predicate::ModEq { modulus, remainder } => write!(f, "v % {modulus} == {remainder}"),
            Predicate::Between { lo, hi } => write!(f, "{lo} <= v <= {hi}"),
            Predicate::In(set) => write!(f, "v in {set:?}"),
            Predicate::Not(p) => write!(f, "not ({p})"),
            Predicate::And(a, b) => write!(f, "({a}) and ({b})"),
            Predicate::Or(a, b) => write!(f, "({a}) or ({b})"),
        }
    }
}

/// Aggregate function of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*) WHERE pred`.
    Count,
    /// `SUM(v) WHERE pred`.
    Sum,
    /// `AVG(v) WHERE pred`.
    Avg,
    /// `phi`-quantile of matching values.
    Quantile(f64),
}

/// An aggregate query with a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The aggregate.
    pub aggregate: Aggregate,
    /// The row filter.
    pub predicate: Predicate,
}

impl Query {
    /// COUNT with a predicate.
    pub fn count(predicate: Predicate) -> Self {
        Self {
            aggregate: Aggregate::Count,
            predicate,
        }
    }

    /// SUM with a predicate.
    pub fn sum(predicate: Predicate) -> Self {
        Self {
            aggregate: Aggregate::Sum,
            predicate,
        }
    }

    /// AVG with a predicate.
    pub fn avg(predicate: Predicate) -> Self {
        Self {
            aggregate: Aggregate::Avg,
            predicate,
        }
    }

    /// `phi`-quantile of matching values.
    pub fn quantile(phi: f64, predicate: Predicate) -> Self {
        Self {
            aggregate: Aggregate::Quantile(phi),
            predicate,
        }
    }

    /// Approximate execution against a sample. Quantile queries with
    /// non-trivial predicates restrict the sample first (the matching
    /// subsample of a uniform sample is uniform over the matching
    /// subpopulation).
    pub fn estimate(&self, sample: &Sample<i64>) -> Estimate {
        let pred = &self.predicate;
        match self.aggregate {
            Aggregate::Count => estimate_count(sample, |v| pred.eval(*v)),
            Aggregate::Sum => estimate_sum(sample, |v| pred.eval(*v)),
            Aggregate::Avg => estimate_avg(sample, |v| pred.eval(*v)),
            Aggregate::Quantile(phi) => {
                // Point estimate with the order-statistic interval mapped
                // onto the Estimate shape (half-width as pseudo-SE).
                match estimate_quantile(sample, phi, 0.95) {
                    None => Estimate {
                        value: f64::NAN,
                        std_error: f64::INFINITY,
                        exact: false,
                    },
                    Some(q) => {
                        let half = (q.hi - q.lo) as f64 / 2.0;
                        Estimate {
                            value: q.value as f64,
                            // Normal 95% half-width corresponds to 1.96 SE.
                            std_error: half / 1.96,
                            exact: q.exact,
                        }
                    }
                }
            }
        }
    }

    /// Exact execution against a full scan of the data.
    pub fn exact<I: IntoIterator<Item = i64>>(&self, values: I) -> f64 {
        let pred = &self.predicate;
        match self.aggregate {
            Aggregate::Count => values.into_iter().filter(|v| pred.eval(*v)).count() as f64,
            Aggregate::Sum => values
                .into_iter()
                .filter(|v| pred.eval(*v))
                .map(|v| v as f64)
                .sum(),
            Aggregate::Avg => {
                let (mut s, mut n) = (0.0f64, 0u64);
                for v in values.into_iter().filter(|v| pred.eval(*v)) {
                    s += v as f64;
                    n += 1;
                }
                if n == 0 {
                    f64::NAN
                } else {
                    s / n as f64
                }
            }
            Aggregate::Quantile(phi) => {
                let mut matching: Vec<i64> = values.into_iter().filter(|v| pred.eval(*v)).collect();
                if matching.is_empty() {
                    return f64::NAN;
                }
                matching.sort_unstable();
                let rank =
                    ((matching.len() as f64 * phi).ceil() as usize).clamp(1, matching.len()) - 1;
                matching[rank] as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    #[test]
    fn predicate_eval() {
        assert!(Predicate::True.eval(5));
        assert!(Predicate::ModEq {
            modulus: 3,
            remainder: 2
        }
        .eval(5));
        assert!(!Predicate::ModEq {
            modulus: 3,
            remainder: 2
        }
        .eval(6));
        // Euclidean remainder for negatives.
        assert!(Predicate::ModEq {
            modulus: 3,
            remainder: 2
        }
        .eval(-1));
        assert!(Predicate::Between { lo: -2, hi: 2 }.eval(0));
        assert!(!Predicate::Between { lo: -2, hi: 2 }.eval(3));
        assert!(Predicate::In(vec![1, 5, 9]).eval(5));
        let composite = Predicate::And(
            Box::new(Predicate::Between { lo: 0, hi: 100 }),
            Box::new(Predicate::Not(Box::new(Predicate::ModEq {
                modulus: 2,
                remainder: 0,
            }))),
        );
        assert!(composite.eval(7));
        assert!(!composite.eval(8));
        assert!(!composite.eval(-3));
    }

    #[test]
    fn predicate_parse() {
        assert_eq!(Predicate::parse("true").unwrap(), Predicate::True);
        assert_eq!(
            Predicate::parse("mod:4:1").unwrap(),
            Predicate::ModEq {
                modulus: 4,
                remainder: 1
            }
        );
        assert_eq!(
            Predicate::parse("between:-5:10").unwrap(),
            Predicate::Between { lo: -5, hi: 10 }
        );
        assert_eq!(
            Predicate::parse("in:1,2,3").unwrap(),
            Predicate::In(vec![1, 2, 3])
        );
        assert!(Predicate::parse("mod:0:1").is_err());
        assert!(Predicate::parse("frob:1").is_err());
    }

    #[test]
    fn exact_matches_manual_computation() {
        let values: Vec<i64> = (0..1000).collect();
        assert_eq!(
            Query::count(Predicate::parse("mod:4:0").unwrap()).exact(values.clone()),
            250.0
        );
        assert_eq!(
            Query::sum(Predicate::Between { lo: 0, hi: 9 }).exact(values.clone()),
            45.0
        );
        assert_eq!(Query::avg(Predicate::True).exact(values.clone()), 499.5);
        assert_eq!(Query::quantile(0.5, Predicate::True).exact(values), 499.0);
    }

    #[test]
    fn estimate_tracks_exact_within_ci() {
        let mut rng = seeded_rng(5);
        let values: Vec<i64> = (0..100_000).collect();
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(2048))
            .sample_batch(values.iter().copied(), &mut rng);
        for q in [
            Query::count(Predicate::ModEq {
                modulus: 5,
                remainder: 0,
            }),
            Query::sum(Predicate::Between { lo: 0, hi: 49_999 }),
            Query::avg(Predicate::True),
        ] {
            let est = q.estimate(&s);
            let truth = q.exact(values.iter().copied());
            let (lo, hi) = est.confidence_interval(0.999);
            assert!(
                (lo..=hi).contains(&truth) || (est.value - truth).abs() / truth.abs() < 0.05,
                "{q:?}: est {} CI [{lo},{hi}] truth {truth}",
                est.value
            );
        }
    }

    #[test]
    fn quantile_estimate_reasonable() {
        let mut rng = seeded_rng(6);
        let values: Vec<i64> = (0..50_000).collect();
        let s = HybridReservoir::new(FootprintPolicy::with_value_budget(2048))
            .sample_batch(values.iter().copied(), &mut rng);
        let q = Query::quantile(0.9, Predicate::True);
        let est = q.estimate(&s);
        let truth = q.exact(values);
        assert!(
            (est.value - truth).abs() / truth < 0.1,
            "q90 {} vs {truth}",
            est.value
        );
    }

    #[test]
    fn nan_on_empty_match() {
        let q = Query::avg(Predicate::In(vec![]));
        assert!(q.exact(0..100i64).is_nan());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Predicate::parse("mod:4:0").unwrap().to_string(),
            "v % 4 == 0"
        );
        assert_eq!(Predicate::True.to_string(), "*");
    }
}
