//! Distinct-value estimation from uniform samples.
//!
//! Metadata discovery (the paper's second motivating use case) often starts
//! with "how many distinct values does this column have?". From a compact
//! histogram sample we get the distinct count *in the sample* for free; two
//! estimators extrapolate to the parent:
//!
//! * [`distinct_naive`] — the sample's own distinct count: a lower bound,
//!   exact for exhaustive samples.
//! * [`distinct_chao`] — the Chao (1984) estimator
//!   `d + f1²/(2·f2)`, where `f1`/`f2` are the numbers of values seen
//!   exactly once/twice. A classic nonparametric lower-bound estimator that
//!   is markedly less biased than the naive count on skewed data.

use swh_core::sample::{Sample, SampleKind};
use swh_core::value::SampleValue;

/// Distinct values present in the sample. A lower bound for the parent's
/// distinct count; exact when the sample is exhaustive.
pub fn distinct_naive<T: SampleValue>(sample: &Sample<T>) -> u64 {
    sample.distinct() as u64
}

/// Chao (1984) lower-bound estimator of the parent's distinct count.
///
/// Returns the naive count when the sample is exhaustive (already exact) or
/// when no value occurs exactly twice (the correction is undefined; the
/// customary fallback `d + f1(f1−1)/2` is applied when `f2 = 0` and
/// `f1 > 0`).
pub fn distinct_chao<T: SampleValue>(sample: &Sample<T>) -> f64 {
    let d = sample.distinct() as f64;
    if sample.kind() == SampleKind::Exhaustive {
        return d;
    }
    let mut f1 = 0.0f64;
    let mut f2 = 0.0f64;
    for (_, c) in sample.histogram().iter() {
        match c {
            1 => f1 += 1.0,
            2 => f2 += 1.0,
            _ => {}
        }
    }
    if f2 > 0.0 {
        d + f1 * f1 / (2.0 * f2)
    } else if f1 > 0.0 {
        d + f1 * (f1 - 1.0) / 2.0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn exhaustive_sample_is_exact() {
        let mut rng = seeded_rng(1);
        let values: Vec<u64> = (0..10_000).map(|i| i % 25).collect();
        let s = HybridReservoir::new(policy(64)).sample_batch(values, &mut rng);
        assert_eq!(distinct_naive(&s), 25);
        assert_eq!(distinct_chao(&s), 25.0);
    }

    #[test]
    fn chao_at_least_naive() {
        let mut rng = seeded_rng(2);
        let values: Vec<u64> = (0..100_000u64).map(|i| i * 7 % 1_000).collect();
        let s = HybridReservoir::new(policy(256)).sample_batch(values, &mut rng);
        assert!(distinct_chao(&s) >= distinct_naive(&s) as f64);
    }

    #[test]
    fn chao_improves_on_naive_for_uniform_domain() {
        // Parent: 2000 distinct values, each appearing 50 times. A 512-deep
        // sample sees far fewer than 2000 distinct values; Chao should
        // recover a substantially larger (and closer) estimate.
        let mut rng = seeded_rng(3);
        let values: Vec<u64> = (0..100_000u64).map(|i| i % 2_000).collect();
        let s = HybridReservoir::new(policy(512)).sample_batch(values, &mut rng);
        let naive = distinct_naive(&s) as f64;
        let chao = distinct_chao(&s);
        assert!(naive < 600.0, "naive {naive} suspiciously high");
        assert!(chao > naive * 1.5, "chao {chao} vs naive {naive}");
        assert!(chao < 4_000.0, "chao {chao} exploded");
    }

    #[test]
    fn all_singletons_fallback() {
        let mut rng = seeded_rng(4);
        // Unique parent: the sample is all singletons, f2 = 0.
        let s = HybridReservoir::new(policy(32)).sample_batch(0..10_000u64, &mut rng);
        let chao = distinct_chao(&s);
        let naive = distinct_naive(&s) as f64;
        assert!(chao >= naive);
    }
}
