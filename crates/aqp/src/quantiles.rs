//! Quantile estimation from uniform samples, with order-statistic
//! confidence intervals.
//!
//! For a uniform sample of size `k`, the sample `φ`-quantile estimates the
//! population `φ`-quantile; a distribution-free confidence interval comes
//! from the binomial fluctuation of the rank: the interval between order
//! statistics at ranks `kφ ± z √(k φ(1−φ))` covers the true quantile with
//! the nominal probability (for `k` large enough).

use swh_core::sample::{Sample, SampleKind};
use swh_core::value::SampleValue;
use swh_rand::normal::normal_quantile;

/// A quantile estimate with an order-statistic confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileEstimate<T> {
    /// The sample quantile (point estimate).
    pub value: T,
    /// Lower interval endpoint.
    pub lo: T,
    /// Upper interval endpoint.
    pub hi: T,
    /// True when the answer is exact (exhaustive sample).
    pub exact: bool,
}

/// Estimate the `phi`-quantile (`0 < phi < 1`) of the sampled parent with a
/// two-sided interval at the given confidence `level`.
///
/// Returns `None` when the sample is empty.
///
/// # Panics
/// Panics unless `0 < phi < 1` and `0 < level < 1`.
pub fn estimate_quantile<T: SampleValue>(
    sample: &Sample<T>,
    phi: f64,
    level: f64,
) -> Option<QuantileEstimate<T>> {
    assert!(phi > 0.0 && phi < 1.0, "phi must lie in (0,1), got {phi}");
    assert!(
        level > 0.0 && level < 1.0,
        "level must lie in (0,1), got {level}"
    );
    let k = sample.size();
    if k == 0 {
        return None;
    }
    // Sorted expansion indexed by rank. Sorted pairs + cumulative counts
    // avoid materializing the bag.
    let pairs = sample.histogram().sorted_pairs();
    let value_at_rank = |rank: u64| -> &T {
        let mut acc = 0u64;
        for (v, c) in &pairs {
            acc += c;
            if rank < acc {
                return v;
            }
        }
        // swh-analyze: allow(panic) -- k == 0 returned None above, so sorted_pairs() is non-empty
        &pairs.last().expect("non-empty sample").0
    };

    let kf = k as f64;
    let point_rank = ((kf * phi).ceil() as u64).clamp(1, k) - 1;
    if sample.kind() == SampleKind::Exhaustive {
        let v = value_at_rank(point_rank).clone();
        return Some(QuantileEstimate {
            value: v.clone(),
            lo: v.clone(),
            hi: v,
            exact: true,
        });
    }
    let z = normal_quantile(0.5 + level / 2.0);
    let half = z * (kf * phi * (1.0 - phi)).sqrt();
    let lo_rank = ((kf * phi - half).floor().max(0.0) as u64).min(k - 1);
    let hi_rank = ((kf * phi + half).ceil() as u64).clamp(0, k - 1);
    Some(QuantileEstimate {
        value: value_at_rank(point_rank).clone(),
        lo: value_at_rank(lo_rank).clone(),
        hi: value_at_rank(hi_rank).clone(),
        exact: false,
    })
}

/// Median shortcut: `estimate_quantile(sample, 0.5, level)`.
pub fn estimate_median<T: SampleValue>(
    sample: &Sample<T>,
    level: f64,
) -> Option<QuantileEstimate<T>> {
    estimate_quantile(sample, 0.5, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn exhaustive_quantiles_are_exact() {
        let mut rng = seeded_rng(1);
        let s = HybridReservoir::new(policy(512)).sample_batch(0..100u64, &mut rng);
        let q = estimate_quantile(&s, 0.5, 0.95).unwrap();
        assert!(q.exact);
        assert_eq!(q.value, 49);
        assert_eq!(q.lo, q.hi);
        let q99 = estimate_quantile(&s, 0.99, 0.95).unwrap();
        assert_eq!(q99.value, 98);
    }

    #[test]
    fn sampled_median_near_truth_with_coverage() {
        let mut rng = seeded_rng(2);
        let n = 100_000u64;
        let trials = 200;
        let mut covered = 0;
        for _ in 0..trials {
            let s = HybridReservoir::new(policy(1024)).sample_batch(0..n, &mut rng);
            let q = estimate_median(&s, 0.95).unwrap();
            assert!(!q.exact);
            let truth = n / 2;
            if (q.lo..=q.hi).contains(&truth) {
                covered += 1;
            }
            // Point estimate within a few percent.
            assert!(
                (q.value as f64 - truth as f64).abs() / (truth as f64) < 0.15,
                "median {} vs {truth}",
                q.value
            );
        }
        let coverage = covered as f64 / trials as f64;
        assert!(coverage > 0.88, "coverage {coverage}");
    }

    #[test]
    fn extreme_quantiles_clamp_to_sample_range() {
        let mut rng = seeded_rng(3);
        let s = HybridReservoir::new(policy(64)).sample_batch(0..10_000u64, &mut rng);
        let q = estimate_quantile(&s, 0.999, 0.99).unwrap();
        let max_in_sample = s.histogram().sorted_pairs().last().unwrap().0;
        assert!(q.hi <= max_in_sample);
        assert!(q.lo <= q.value && q.value <= q.hi);
    }

    #[test]
    fn duplicated_values_respect_multiplicity() {
        let mut rng = seeded_rng(4);
        // 90% zeros, 10% ones: median 0, 0.95-quantile 1.
        let values: Vec<u64> = (0..1_000).map(|i| u64::from(i % 10 == 0)).collect();
        let s = HybridReservoir::new(policy(4096)).sample_batch(values, &mut rng);
        assert_eq!(estimate_quantile(&s, 0.5, 0.95).unwrap().value, 0);
        assert_eq!(estimate_quantile(&s, 0.95, 0.95).unwrap().value, 1);
    }

    #[test]
    fn empty_sample_returns_none() {
        let s = swh_core::sample::Sample::<u64>::from_parts(
            swh_core::histogram::CompactHistogram::new(),
            SampleKind::Exhaustive,
            0,
            policy(8),
        );
        assert!(estimate_quantile(&s, 0.5, 0.95).is_none());
    }

    #[test]
    #[should_panic(expected = "phi must lie in (0,1)")]
    fn rejects_bad_phi() {
        let mut rng = seeded_rng(5);
        let s = HybridReservoir::new(policy(8)).sample_batch(0..10u64, &mut rng);
        estimate_quantile(&s, 1.0, 0.95);
    }
}
