//! Estimators over stratified samples (§4.1 of the paper).
//!
//! When per-partition samples are concatenated rather than merged, each
//! stratum is estimated independently and the results are combined;
//! variances add across strata. For populations whose partitions differ
//! systematically (e.g. one day of unusual traffic), stratified estimates
//! have lower variance than estimates from one uniform merged sample of
//! the same total size.

use crate::estimators::{estimate_count, estimate_sum, Estimate, Numeric};
use swh_core::stratified::StratifiedSample;
use swh_core::value::SampleValue;

/// Estimate `COUNT(*) WHERE pred` over the union of all strata.
pub fn stratified_count<T: SampleValue>(
    strat: &StratifiedSample<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Estimate {
    combine(strat.strata().iter().map(|s| estimate_count(s, &mut pred)))
}

/// Estimate `SUM(v) WHERE pred` over the union of all strata.
pub fn stratified_sum<T: Numeric>(
    strat: &StratifiedSample<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Estimate {
    combine(strat.strata().iter().map(|s| estimate_sum(s, &mut pred)))
}

/// Sum independent per-stratum estimates: totals add, variances add.
fn combine(parts: impl Iterator<Item = Estimate>) -> Estimate {
    let mut value = 0.0;
    let mut var = 0.0;
    let mut exact = true;
    for e in parts {
        value += e.value;
        var += e.std_error * e.std_error;
        exact &= e.exact;
    }
    Estimate {
        value,
        std_error: var.sqrt(),
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn build(per_part: u64, parts: u64, n_f: u64) -> StratifiedSample<u64> {
        let mut rng = seeded_rng(11);
        let strata = (0..parts)
            .map(|p| {
                HybridReservoir::new(FootprintPolicy::with_value_budget(n_f))
                    .sample_batch(p * per_part..(p + 1) * per_part, &mut rng)
            })
            .collect();
        StratifiedSample::new(strata)
    }

    #[test]
    fn exhaustive_strata_are_exact() {
        let s = build(100, 4, 512);
        let c = stratified_count(&s, |v| v % 2 == 0);
        assert!(c.exact);
        assert_eq!(c.value, 200.0);
        let sum = stratified_sum(&s, |_| true);
        assert_eq!(sum.value, (0..400u64).sum::<u64>() as f64);
    }

    #[test]
    fn sampled_strata_estimates_near_truth() {
        let s = build(50_000, 4, 1024);
        let truth = 100_000.0; // half of 200_000 are even
        let c = stratified_count(&s, |v| v % 2 == 0);
        assert!(!c.exact);
        assert!(
            (c.value - truth).abs() < 6.0 * c.std_error,
            "count {} vs {truth} (se {})",
            c.value,
            c.std_error
        );
    }

    #[test]
    fn variance_adds_across_strata() {
        let s = build(50_000, 4, 1024);
        let per: Vec<Estimate> = s
            .strata()
            .iter()
            .map(|st| estimate_count(st, |v| v % 2 == 0))
            .collect();
        let combined = stratified_count(&s, |v| v % 2 == 0);
        let var_sum: f64 = per.iter().map(|e| e.std_error * e.std_error).sum();
        assert!((combined.std_error * combined.std_error - var_sum).abs() < 1e-9);
    }
}
