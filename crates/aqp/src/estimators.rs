//! COUNT / SUM / AVG estimators with confidence intervals.

use swh_core::sample::{Sample, SampleKind};
use swh_core::value::SampleValue;
use swh_rand::checked::{exact_eq, rounding_f64, rounding_f64_i64};
use swh_rand::normal::normal_quantile;

/// Values that can be aggregated numerically.
pub trait Numeric: SampleValue {
    /// Numeric magnitude used in SUM/AVG.
    fn to_f64(&self) -> f64;
}

macro_rules! numeric_impl {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            fn to_f64(&self) -> f64 {
                f64::from(*self)
            }
        }
    )*};
}

numeric_impl!(u8, u16, u32, i8, i16, i32);

impl Numeric for u64 {
    fn to_f64(&self) -> f64 {
        rounding_f64(*self)
    }
}

impl Numeric for i64 {
    fn to_f64(&self) -> f64 {
        rounding_f64_i64(*self)
    }
}

/// A point estimate with its standard error.
///
/// ```
/// use swh_aqp::estimators::estimate_count;
/// use swh_core::{FootprintPolicy, HybridReservoir, Sampler};
/// use swh_rand::seeded_rng;
///
/// let mut rng = seeded_rng(1);
/// let policy = FootprintPolicy::with_value_budget(2048);
/// let sample = HybridReservoir::new(policy).sample_batch(0..100_000u64, &mut rng);
/// let est = estimate_count(&sample, |v| v % 2 == 0);
/// let (lo, hi) = est.confidence_interval(0.99);
/// assert!(lo <= 50_000.0 && 50_000.0 <= hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate.
    pub value: f64,
    /// Estimated standard error (0 for exact answers).
    pub std_error: f64,
    /// True when the answer is exact (exhaustive sample).
    pub exact: bool,
}

impl Estimate {
    fn exact(value: f64) -> Self {
        Self {
            value,
            std_error: 0.0,
            exact: true,
        }
    }

    fn approximate(value: f64, std_error: f64) -> Self {
        Self {
            value,
            std_error,
            exact: false,
        }
    }

    /// Two-sided normal-theory confidence interval at the given level
    /// (e.g. `0.95`).
    ///
    /// # Panics
    /// Panics unless `0 < level < 1`.
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must lie in (0,1)"
        );
        if self.exact {
            return (self.value, self.value);
        }
        let z = normal_quantile(0.5 + level / 2.0);
        (
            self.value - z * self.std_error,
            self.value + z * self.std_error,
        )
    }

    /// Half-width of the interval relative to the estimate (∞ when the
    /// estimate is 0 and the error is not).
    pub fn relative_error(&self, level: f64) -> f64 {
        if self.exact {
            return 0.0;
        }
        let (lo, hi) = self.confidence_interval(level);
        let half = (hi - lo) / 2.0;
        if exact_eq(self.value, 0.0) {
            if exact_eq(half, 0.0) {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            half / self.value.abs()
        }
    }
}

/// Per-design expansion statistics shared by the estimators.
struct Design {
    /// Multiplier from sample totals to population totals.
    expansion: f64,
    /// Variance model.
    kind: DesignKind,
}

enum DesignKind {
    Exact,
    Bernoulli { q: f64 },
    Srs { n: f64, k: f64 },
}

fn design<T: SampleValue>(sample: &Sample<T>) -> Design {
    match sample.kind() {
        SampleKind::Exhaustive => Design {
            expansion: 1.0,
            kind: DesignKind::Exact,
        },
        SampleKind::Bernoulli { q, .. } | SampleKind::Concise { q } => {
            // Concise samples are *not* uniform; estimates are best-effort
            // and documented as biased. Same expansion arithmetic applies.
            Design {
                expansion: 1.0 / q,
                kind: DesignKind::Bernoulli { q },
            }
        }
        SampleKind::Reservoir => {
            let n = rounding_f64(sample.parent_size());
            let k = rounding_f64(sample.size());
            Design {
                expansion: if k > 0.0 { n / k } else { 0.0 },
                kind: DesignKind::Srs { n, k },
            }
        }
    }
}

/// Estimate `COUNT(*) WHERE pred` over the sampled parent partition.
pub fn estimate_count<T: SampleValue>(
    sample: &Sample<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Estimate {
    let m: u64 = sample
        .histogram()
        .iter()
        .filter(|(v, _)| pred(v))
        .map(|(_, c)| c)
        .sum();
    let d = design(sample);
    match d.kind {
        DesignKind::Exact => Estimate::exact(rounding_f64(m)),
        DesignKind::Bernoulli { q } => {
            // Horvitz–Thompson: m/q; Var = m (1-q)/q².
            let var = rounding_f64(m) * (1.0 - q) / (q * q);
            Estimate::approximate(rounding_f64(m) * d.expansion, var.sqrt())
        }
        DesignKind::Srs { n, k } => {
            if exact_eq(k, 0.0) {
                return Estimate::approximate(0.0, 0.0);
            }
            let p_hat = rounding_f64(m) / k;
            // Var(N·p̂) = N² p̂(1−p̂)/k · (1 − k/N)  (finite-population).
            let var = n * n * p_hat * (1.0 - p_hat) / k * (1.0 - k / n);
            Estimate::approximate(n * p_hat, var.max(0.0).sqrt())
        }
    }
}

/// Estimate `SUM(v) WHERE pred` over the sampled parent partition.
pub fn estimate_sum<T: Numeric>(sample: &Sample<T>, mut pred: impl FnMut(&T) -> bool) -> Estimate {
    // Accumulate Σv and Σv² over matching sample elements (count-weighted).
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for (v, c) in sample.histogram().iter() {
        if pred(v) {
            let x = v.to_f64();
            let cf = rounding_f64(c);
            s1 += cf * x;
            s2 += cf * x * x;
        }
    }
    let d = design(sample);
    match d.kind {
        DesignKind::Exact => Estimate::exact(s1),
        DesignKind::Bernoulli { q } => {
            // HT: Σv/q; Var = (1−q)/q² Σv².
            let var = (1.0 - q) / (q * q) * s2;
            Estimate::approximate(s1 * d.expansion, var.max(0.0).sqrt())
        }
        DesignKind::Srs { n, k } => {
            if exact_eq(k, 0.0) {
                return Estimate::approximate(0.0, 0.0);
            }
            // Treat v·1{pred} as the per-element variable over the whole
            // sample of size k.
            let mean = s1 / k;
            let var_elem = (s2 / k - mean * mean).max(0.0) * k / (k - 1.0).max(1.0);
            let var = n * n * var_elem / k * (1.0 - k / n);
            Estimate::approximate(n * mean, var.max(0.0).sqrt())
        }
    }
}

/// Estimate the population variance `VAR(v) WHERE pred` (plug-in
/// estimator from the matching subsample, with the sample-variance
/// correction). The reported standard error is a large-sample normal
/// approximation based on the fourth central moment.
pub fn estimate_variance<T: Numeric>(
    sample: &Sample<T>,
    mut pred: impl FnMut(&T) -> bool,
) -> Estimate {
    // Count-weighted moments over matching sample elements.
    let (mut m, mut s1, mut s2) = (0.0f64, 0.0f64, 0.0f64);
    for (v, c) in sample.histogram().iter() {
        if pred(v) {
            let x = v.to_f64();
            let cf = rounding_f64(c);
            m += cf;
            s1 += cf * x;
            s2 += cf * x * x;
        }
    }
    if m < 2.0 {
        return Estimate {
            value: f64::NAN,
            std_error: f64::INFINITY,
            exact: false,
        };
    }
    let mean = s1 / m;
    let var = (s2 / m - mean * mean).max(0.0);
    if sample.kind() == SampleKind::Exhaustive {
        return Estimate::exact(var);
    }
    // Unbiased-ish correction and SE via the fourth central moment.
    let var_hat = var * m / (m - 1.0);
    let mut s4 = 0.0f64;
    for (v, c) in sample.histogram().iter() {
        if pred(v) {
            let d = v.to_f64() - mean;
            s4 += rounding_f64(c) * d * d * d * d;
        }
    }
    let mu4 = s4 / m;
    // Var(s²) ≈ (μ4 − σ⁴)/m for large samples.
    let se = ((mu4 - var * var).max(0.0) / m).sqrt();
    Estimate::approximate(var_hat, se)
}

/// Estimate `AVG(v) WHERE pred` (ratio of SUM and COUNT estimates; the
/// standard error uses the matching-subsample standard deviation).
pub fn estimate_avg<T: Numeric>(sample: &Sample<T>, mut pred: impl FnMut(&T) -> bool) -> Estimate {
    let (mut s1, mut s2, mut m) = (0.0f64, 0.0f64, 0.0f64);
    for (v, c) in sample.histogram().iter() {
        if pred(v) {
            let x = v.to_f64();
            let cf = rounding_f64(c);
            s1 += cf * x;
            s2 += cf * x * x;
            m += cf;
        }
    }
    if exact_eq(m, 0.0) {
        return Estimate::approximate(f64::NAN, f64::INFINITY);
    }
    let mean = s1 / m;
    if sample.kind() == SampleKind::Exhaustive {
        return Estimate::exact(mean);
    }
    let var_elem = (s2 / m - mean * mean).max(0.0) * m / (m - 1.0).max(1.0);
    // FPC against the (unknown) matching population size: approximate with
    // the matching fraction of the parent.
    let n_match = rounding_f64(sample.parent_size()) * m / rounding_f64(sample.size().max(1));
    let fpc = (1.0 - m / n_match).max(0.0);
    Estimate::approximate(mean, (var_elem / m * fpc).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_bernoulli::HybridBernoulli;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn exhaustive_answers_are_exact() {
        let mut rng = seeded_rng(1);
        let values: Vec<u64> = (0..1000).map(|i| i % 10).collect();
        let s = HybridReservoir::new(policy(64)).sample_batch(values, &mut rng);
        let c = estimate_count(&s, |v| *v < 5);
        assert!(c.exact);
        assert_eq!(c.value, 500.0);
        assert_eq!(c.confidence_interval(0.95), (500.0, 500.0));
        let sum = estimate_sum(&s, |_| true);
        assert_eq!(sum.value, (0..10u64).sum::<u64>() as f64 * 100.0);
        let avg = estimate_avg(&s, |_| true);
        assert_eq!(avg.value, 4.5);
    }

    #[test]
    fn reservoir_count_is_unbiased_and_covered() {
        let mut rng = seeded_rng(2);
        let n = 100_000u64;
        let truth = (n / 2) as f64; // predicate: even values
        let trials = 200;
        let mut sum_est = 0.0;
        let mut covered = 0;
        for _ in 0..trials {
            let s = HybridReservoir::new(policy(1024)).sample_batch(0..n, &mut rng);
            let e = estimate_count(&s, |v| v % 2 == 0);
            sum_est += e.value;
            let (lo, hi) = e.confidence_interval(0.95);
            if (lo..=hi).contains(&truth) {
                covered += 1;
            }
        }
        let mean = sum_est / trials as f64;
        assert!((mean / truth - 1.0).abs() < 0.01, "mean {mean} vs {truth}");
        let coverage = covered as f64 / trials as f64;
        assert!(coverage > 0.88, "coverage {coverage}");
    }

    #[test]
    fn bernoulli_sum_is_unbiased() {
        let mut rng = seeded_rng(3);
        let n = 50_000u64;
        let truth: f64 = (0..n).sum::<u64>() as f64;
        let trials = 200;
        let mut sum_est = 0.0;
        let mut covered = 0;
        for _ in 0..trials {
            let s = HybridBernoulli::new(policy(1024), n).sample_batch(0..n, &mut rng);
            let e = estimate_sum(&s, |_| true);
            sum_est += e.value;
            let (lo, hi) = e.confidence_interval(0.95);
            if (lo..=hi).contains(&truth) {
                covered += 1;
            }
        }
        let mean = sum_est / trials as f64;
        assert!((mean / truth - 1.0).abs() < 0.01, "mean {mean} vs {truth}");
        assert!(
            covered as f64 / trials as f64 > 0.85,
            "coverage {covered}/{trials}"
        );
    }

    #[test]
    fn avg_estimate_close_to_truth() {
        let mut rng = seeded_rng(4);
        let n = 100_000u64;
        let s = HybridReservoir::new(policy(2048)).sample_batch(0..n, &mut rng);
        let e = estimate_avg(&s, |_| true);
        let truth = (n - 1) as f64 / 2.0;
        assert!(
            (e.value - truth).abs() < 5.0 * e.std_error,
            "avg {} vs {truth} (se {})",
            e.value,
            e.std_error
        );
    }

    #[test]
    fn variance_exact_and_sampled() {
        let mut rng = seeded_rng(7);
        // Uniform 0..n: population variance = (n²−1)/12.
        let n = 100_000u64;
        let truth = ((n * n - 1) as f64) / 12.0;
        // Exhaustive case: small population, exact answer.
        let small = HybridReservoir::new(policy(1 << 18)).sample_batch(0..1_000u64, &mut rng);
        let e = estimate_variance(&small, |_| true);
        assert!(e.exact);
        assert!((e.value - (1_000_000.0 - 1.0) / 12.0).abs() < 1.0);
        // Sampled case: within a few standard errors of the truth.
        let s = HybridReservoir::new(policy(4096)).sample_batch(0..n, &mut rng);
        let e = estimate_variance(&s, |_| true);
        assert!(!e.exact);
        assert!(
            (e.value - truth).abs() < 6.0 * e.std_error.max(truth * 0.01),
            "variance {} vs {truth} (se {})",
            e.value,
            e.std_error
        );
    }

    #[test]
    fn variance_undefined_below_two_matches() {
        let mut rng = seeded_rng(8);
        let s = HybridReservoir::new(policy(64)).sample_batch(0..10_000u64, &mut rng);
        let e = estimate_variance(&s, |v| *v == 3);
        assert!(e.value.is_nan());
    }

    #[test]
    fn empty_predicate_match() {
        let mut rng = seeded_rng(5);
        let s = HybridReservoir::new(policy(64)).sample_batch(0..10_000u64, &mut rng);
        let c = estimate_count(&s, |v| *v > 1_000_000);
        assert_eq!(c.value, 0.0);
        let a = estimate_avg(&s, |v| *v > 1_000_000);
        assert!(a.value.is_nan());
    }

    #[test]
    fn relative_error_shrinks_with_sample_size() {
        let mut rng = seeded_rng(6);
        let n = 200_000u64;
        let small = HybridReservoir::new(policy(256)).sample_batch(0..n, &mut rng);
        let large = HybridReservoir::new(policy(8192)).sample_batch(0..n, &mut rng);
        let e_small = estimate_count(&small, |v| v % 3 == 0);
        let e_large = estimate_count(&large, |v| v % 3 == 0);
        assert!(
            e_large.relative_error(0.95) < e_small.relative_error(0.95),
            "{} !< {}",
            e_large.relative_error(0.95),
            e_small.relative_error(0.95)
        );
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_confidence_level_panics() {
        Estimate::exact(1.0).confidence_interval(1.0);
    }
}
