//! Column profiling for automated metadata discovery — the paper's second
//! motivating application (§1: "sampling has received attention as a useful
//! tool for data integration tasks such as automated metadata discovery",
//! citing the authors' own BHUNT/CORDS line of work).
//!
//! A [`ColumnProfile`] summarizes one data-set partition (or any merged
//! union) from its warehouse sample alone: row count, distinct-value
//! estimates, value range, most-common values with estimated frequencies,
//! and the effective sampling fraction — the inputs schema-matching and
//! constraint-discovery tools consume.

use crate::distinct::{distinct_chao, distinct_naive};
use crate::estimators::Estimate;
use swh_core::sample::{Sample, SampleKind};
use swh_core::value::SampleValue;

/// Summary statistics of one column derived from its sample.
#[derive(Debug, Clone)]
pub struct ColumnProfile<T> {
    /// Number of rows in the parent (known exactly from provenance).
    pub rows: u64,
    /// Number of values in the sample the profile was computed from.
    pub sample_size: u64,
    /// Whether the profile is exact (exhaustive sample).
    pub exact: bool,
    /// Distinct values observed in the sample (lower bound for parent).
    pub distinct_lower_bound: u64,
    /// Chao84 estimate of the parent's distinct count.
    pub distinct_estimate: f64,
    /// Smallest sampled value.
    pub min: Option<T>,
    /// Largest sampled value.
    pub max: Option<T>,
    /// Most common values with estimated parent frequencies, descending.
    pub most_common: Vec<(T, Estimate)>,
    /// Effective sampling fraction `|S| / |D|`.
    pub sampling_fraction: f64,
}

/// Build a profile from a sample, reporting at most `mcv_limit` most-common
/// values.
pub fn profile<T: SampleValue>(sample: &Sample<T>, mcv_limit: usize) -> ColumnProfile<T> {
    let expansion = match sample.kind() {
        SampleKind::Exhaustive => 1.0,
        SampleKind::Bernoulli { q, .. } | SampleKind::Concise { q } => 1.0 / q,
        SampleKind::Reservoir => {
            if sample.size() > 0 {
                sample.parent_size() as f64 / sample.size() as f64
            } else {
                0.0
            }
        }
    };
    let exact = sample.kind() == SampleKind::Exhaustive;

    let pairs = sample.histogram().sorted_pairs();
    let min = pairs.first().map(|(v, _)| v.clone());
    let max = pairs.last().map(|(v, _)| v.clone());

    // Top-m by sampled count (ties broken by value order for determinism).
    let mut by_count = pairs;
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let most_common = by_count
        .into_iter()
        .take(mcv_limit)
        .map(|(v, c)| {
            let est = crate::estimators::estimate_count(sample, |x| *x == v);
            debug_assert!((est.value - c as f64 * expansion).abs() < 1e-6 || !exact);
            (v, est)
        })
        .collect();

    ColumnProfile {
        rows: sample.parent_size(),
        sample_size: sample.size(),
        exact,
        distinct_lower_bound: distinct_naive(sample),
        // Chao84 can explode on all-singleton samples (its f2 = 0 fallback);
        // the parent size is always a valid upper bound.
        distinct_estimate: distinct_chao(sample).min(sample.parent_size() as f64),
        min,
        max,
        most_common,
        sampling_fraction: sample.sampling_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swh_core::footprint::FootprintPolicy;
    use swh_core::hybrid_reservoir::HybridReservoir;
    use swh_core::sampler::Sampler;
    use swh_rand::seeded_rng;

    fn policy(n_f: u64) -> FootprintPolicy {
        FootprintPolicy::with_value_budget(n_f)
    }

    #[test]
    fn exhaustive_profile_is_exact() {
        let mut rng = seeded_rng(1);
        let values: Vec<u64> = (0..1_000).map(|i| i % 10).collect();
        let s = HybridReservoir::new(policy(64)).sample_batch(values, &mut rng);
        let p = profile(&s, 3);
        assert!(p.exact);
        assert_eq!(p.rows, 1_000);
        assert_eq!(p.distinct_lower_bound, 10);
        assert_eq!(p.distinct_estimate, 10.0);
        assert_eq!(p.min, Some(0));
        assert_eq!(p.max, Some(9));
        assert_eq!(p.most_common.len(), 3);
        for (_, e) in &p.most_common {
            assert!(e.exact);
            assert_eq!(e.value, 100.0);
        }
    }

    #[test]
    fn sampled_profile_estimates_mcvs() {
        let mut rng = seeded_rng(2);
        // Skewed: value 0 has 50%, 1 has 25%, rest spread over 1000 values.
        let values: Vec<u64> = (0..100_000u64)
            .map(|i| match i % 4 {
                0 | 1 => 0,
                2 => 1,
                _ => 2 + (i % 40_000), // 10k distinct tail values
            })
            .collect();
        let s = HybridReservoir::new(policy(2048)).sample_batch(values, &mut rng);
        let p = profile(&s, 2);
        assert!(!p.exact);
        assert_eq!(p.rows, 100_000);
        assert_eq!(p.most_common[0].0, 0);
        assert_eq!(p.most_common[1].0, 1);
        let top = &p.most_common[0].1;
        assert!(
            (top.value - 50_000.0).abs() < 6.0 * top.std_error,
            "top MCV {} vs 50000",
            top.value
        );
    }

    #[test]
    fn distinct_estimates_ordered() {
        let mut rng = seeded_rng(3);
        let values: Vec<u64> = (0..50_000u64).map(|i| i % 3_000).collect();
        let s = HybridReservoir::new(policy(512)).sample_batch(values, &mut rng);
        let p = profile(&s, 1);
        assert!(p.distinct_estimate >= p.distinct_lower_bound as f64);
        assert!(p.sampling_fraction > 0.0 && p.sampling_fraction < 1.0);
    }

    #[test]
    fn empty_sample_profile() {
        let s = swh_core::sample::Sample::<u64>::from_parts(
            swh_core::histogram::CompactHistogram::new(),
            swh_core::sample::SampleKind::Exhaustive,
            0,
            policy(8),
        );
        let p = profile(&s, 5);
        assert_eq!(p.rows, 0);
        assert!(p.min.is_none());
        assert!(p.max.is_none());
        assert!(p.most_common.is_empty());
    }
}
