//! Randomized property tests for the core invariants listed in DESIGN.md §5:
//! footprint bounds, histogram/bag equivalence, purge semantics, merge
//! cardinalities, and codec round-trips.
//!
//! Each property runs a fixed number of cases generated from a seeded RNG,
//! so failures are deterministic and reproducible from the case index.

use sample_warehouse::sampling::histogram::CompactHistogram;
use sample_warehouse::sampling::purge::{purge_bernoulli, purge_reservoir};
use sample_warehouse::sampling::{
    merge, FootprintPolicy, HybridBernoulli, HybridReservoir, Sample, SampleKind, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::codec::{decode_sample, encode_sample};

use rand::rngs::SmallRng;
use rand::Rng;

const CASES: u64 = 64;

/// A bag of small integers (lots of duplicates) of length 0..300.
fn bag(rng: &mut SmallRng) -> Vec<u64> {
    let len = rng.random_range(0..300usize);
    (0..len).map(|_| rng.random_range(0u64..40)).collect()
}

#[test]
fn histogram_matches_multiset_model() {
    let mut rng = seeded_rng(0xA1);
    for case in 0..CASES {
        let values = bag(&mut rng);
        let hist = CompactHistogram::from_bag(values.clone());
        // Model: sorted bag.
        let mut model = values.clone();
        model.sort_unstable();
        let mut expanded = hist.expand();
        expanded.sort_unstable();
        assert_eq!(expanded, model, "case {case}");
        assert_eq!(hist.total() as usize, values.len());
        // Slots never exceed total; distinct counts match dedup.
        let mut dedup = model.clone();
        dedup.dedup();
        assert_eq!(hist.distinct(), dedup.len());
        assert!(hist.slots() <= hist.total());
        // Singleton accounting.
        let singles = dedup
            .iter()
            .filter(|v| values.iter().filter(|x| x == v).count() == 1)
            .count() as u64;
        assert_eq!(hist.singletons(), singles, "case {case}");
    }
}

#[test]
fn histogram_join_is_multiset_union() {
    let mut rng = seeded_rng(0xA2);
    for case in 0..CASES {
        let a = bag(&mut rng);
        let b = bag(&mut rng);
        let mut ha = CompactHistogram::from_bag(a.clone());
        let hb = CompactHistogram::from_bag(b.clone());
        let predicted = ha.joined_slots(&hb);
        ha.join(hb);
        assert_eq!(ha.slots(), predicted, "case {case}");
        let mut combined = a;
        combined.extend(b);
        combined.sort_unstable();
        let mut expanded = ha.expand();
        expanded.sort_unstable();
        assert_eq!(expanded, combined, "case {case}");
    }
}

#[test]
fn purge_bernoulli_is_subsample() {
    let mut rng = seeded_rng(0xA3);
    for case in 0..CASES {
        let values = bag(&mut rng);
        let q: f64 = rng.random();
        let orig = CompactHistogram::from_bag(values);
        let mut h = orig.clone();
        purge_bernoulli(&mut h, q, &mut rng);
        assert!(h.total() <= orig.total(), "case {case}");
        for (v, c) in h.iter() {
            assert!(c <= orig.count(v), "count inflated for {v:?} (case {case})");
        }
        // Internal bookkeeping still consistent.
        assert_eq!(CompactHistogram::from_bag(h.expand()), h, "case {case}");
    }
}

#[test]
fn purge_reservoir_exact_size() {
    let mut rng = seeded_rng(0xA4);
    for case in 0..CASES {
        let values = bag(&mut rng);
        let m = rng.random_range(0u64..400);
        let orig = CompactHistogram::from_bag(values);
        let mut h = orig.clone();
        purge_reservoir(&mut h, m, &mut rng);
        assert_eq!(h.total(), orig.total().min(m), "case {case}");
        for (v, c) in h.iter() {
            assert!(c <= orig.count(v), "case {case}");
        }
        assert_eq!(CompactHistogram::from_bag(h.expand()), h, "case {case}");
    }
}

#[test]
fn hb_footprint_never_exceeded() {
    let mut rng = seeded_rng(0xA5);
    for case in 0..CASES {
        let len = rng.random_range(1..2_000usize);
        let values: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..10_000)).collect();
        let n_f = rng.random_range(8u64..128);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let n = values.len() as u64;
        let mut hb = HybridBernoulli::new(policy, n);
        for v in &values {
            hb.observe(*v, &mut rng);
            assert!(
                hb.current_slots() <= n_f,
                "slots {} > n_f {n_f} (case {case})",
                hb.current_slots()
            );
        }
        let s = hb.finalize(&mut rng);
        assert!(s.slots() <= n_f);
        assert!(s.kind() == SampleKind::Exhaustive || s.size() <= n_f);
        assert_eq!(s.parent_size(), n, "case {case}");
    }
}

#[test]
fn hr_footprint_never_exceeded() {
    let mut rng = seeded_rng(0xA6);
    for case in 0..CASES {
        let len = rng.random_range(1..2_000usize);
        let values: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..10_000)).collect();
        let n_f = rng.random_range(8u64..128);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut hr = HybridReservoir::new(policy);
        for v in &values {
            hr.observe(*v, &mut rng);
            assert!(hr.current_slots() <= n_f, "case {case}");
        }
        let s = hr.finalize(&mut rng);
        assert!(s.slots() <= n_f);
        // HR: non-exhaustive samples have exactly n_F elements *or* the
        // stream ended with the lazy purge pending a smaller total.
        if s.kind() == SampleKind::Reservoir {
            assert!(s.size() <= n_f, "case {case}");
        }
    }
}

#[test]
fn hb_phase_transitions_recorded_exactly_once() {
    // Algorithm HB leaves phase 1 at most once and enters phase 3 at most
    // once per run; its stats must agree with the terminal provenance.
    // p = 0.5 makes the 2→3 overflow common enough to exercise all arms.
    let mut rng = seeded_rng(0xA7);
    let mut saw_phase2 = 0u32;
    let mut saw_phase3 = 0u32;
    for case in 0..200u64 {
        let n = rng.random_range(1u64..5_000);
        let n_f = rng.random_range(8u64..128);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut hb = HybridBernoulli::with_p_bound(policy, n, 0.5);
        for v in 0..n {
            hb.observe(v, &mut rng);
        }
        let phase = hb.phase();
        let (sample, stats) = hb.finalize_with_stats(&mut rng);
        assert_eq!(stats.observed(), n, "case {case}");
        assert!(stats.footprint_hwm <= n_f, "case {case}");
        match phase {
            1 => {
                assert_eq!(stats.to_phase2_at, None, "case {case}");
                assert_eq!(stats.to_phase3_at, None, "case {case}");
                assert_eq!(stats.purges, 0, "case {case}");
                assert_eq!(sample.kind(), SampleKind::Exhaustive);
            }
            2 => {
                let p2 = stats.to_phase2_at.expect("phase 2 run records 1→2");
                assert!(p2 >= 1 && p2 <= n, "case {case}");
                assert_eq!(stats.to_phase3_at, None, "case {case}");
                assert_eq!(stats.purges, 1, "one purgeBernoulli (case {case})");
                saw_phase2 += 1;
            }
            3 => {
                let p2 = stats.to_phase2_at.expect("phase 3 run still records 1→2");
                let p3 = stats.to_phase3_at.expect("phase 3 run records 2→3");
                assert!(p2 <= p3, "transitions ordered (case {case})");
                assert!(p3 <= n, "case {case}");
                assert!(stats.purges >= 1, "case {case}");
                saw_phase3 += 1;
            }
            p => panic!("impossible phase {p}"),
        }
    }
    assert!(
        saw_phase2 > 10,
        "generator never reached phase 2 ({saw_phase2})"
    );
    assert!(
        saw_phase3 > 0,
        "generator never reached phase 3 ({saw_phase3})"
    );
}

#[test]
fn sampled_values_come_from_stream() {
    let mut rng = seeded_rng(0xA8);
    for case in 0..CASES {
        let len = rng.random_range(1..500usize);
        let values: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..50)).collect();
        let policy = FootprintPolicy::with_value_budget(16);
        let orig = CompactHistogram::from_bag(values.clone());
        let s = HybridReservoir::new(policy).sample_batch(values, &mut rng);
        for (v, c) in s.histogram().iter() {
            assert!(
                c <= orig.count(v),
                "sample invented occurrences of {v:?} (case {case})"
            );
        }
    }
}

#[test]
fn merge_size_and_parent_invariants() {
    let mut rng = seeded_rng(0xA9);
    for case in 0..CASES {
        let n1 = rng.random_range(1u64..3_000);
        let n2 = rng.random_range(1u64..3_000);
        let n_f = rng.random_range(8u64..64);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let s1 = HybridReservoir::new(policy).sample_batch(0..n1, &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch(n1..n1 + n2, &mut rng);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        assert_eq!(m.parent_size(), n1 + n2, "case {case}");
        assert!(
            m.size() <= n_f.max(m.parent_size().min(n_f)),
            "merged size {} exceeds bound {n_f} (case {case})",
            m.size()
        );
        assert!(m.slots() <= n_f);
        // Values come from the union domain.
        for (v, _) in m.histogram().iter() {
            assert!(*v < n1 + n2, "case {case}");
        }
    }
}

#[test]
fn codec_roundtrip_arbitrary_samples() {
    let mut rng = seeded_rng(0xAA);
    for case in 0..CASES {
        let values = bag(&mut rng);
        let n_f = rng.random_range(8u64..128);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let s: Sample<u64> = HybridReservoir::new(policy).sample_batch(values, &mut rng);
        let bytes = encode_sample(&s);
        let back: Sample<u64> = decode_sample(&bytes).unwrap();
        assert_eq!(back.histogram(), s.histogram(), "case {case}");
        assert_eq!(back.kind(), s.kind());
        assert_eq!(back.parent_size(), s.parent_size());
        assert_eq!(back.policy(), s.policy());
    }
}

#[test]
fn codec_rejects_random_garbage() {
    // Random bytes must never panic — either decode (vanishingly unlikely)
    // or produce a clean error.
    let mut rng = seeded_rng(0xAB);
    for _ in 0..256 {
        let len = rng.random_range(0..200usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u8>()).collect();
        let _ = decode_sample::<u64>(&bytes);
    }
}

#[test]
fn alias_table_encodes_arbitrary_weights() {
    use sample_warehouse::variates::alias::AliasTable;
    let mut rng = seeded_rng(0xAC);
    for case in 0..CASES {
        let len = rng.random_range(1..64usize);
        let weights: Vec<f64> = (0..len).map(|_| rng.random::<f64>() * 100.0).collect();
        let total: f64 = weights.iter().sum();
        if total <= 1e-9 {
            continue;
        }
        let table = AliasTable::new(&weights);
        let probs = table.outcome_probabilities();
        for (p, w) in probs.iter().zip(&weights) {
            assert!(
                (p - w / total).abs() < 1e-9,
                "{p} vs {} (case {case})",
                w / total
            );
        }
    }
}

#[test]
fn hypergeometric_recurrence_matches_direct() {
    use sample_warehouse::variates::Hypergeometric;
    let mut rng = seeded_rng(0xAD);
    for case in 0..CASES {
        let d1 = rng.random_range(1u64..200);
        let d2 = rng.random_range(1u64..200);
        let k_frac: f64 = rng.random();
        let k = ((d1 + d2) as f64 * k_frac) as u64;
        let h = Hypergeometric::new(d1, d2, k);
        let sum: f64 = h.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "case {case}");
        for l in 0..=k {
            assert!(
                (h.pmf(l) - h.pmf_direct(l)).abs() < 1e-9,
                "l={l} (case {case})"
            );
        }
    }
}

#[test]
fn merge_fuzz_across_provenances() {
    // Merge any combination of exhaustive / Bernoulli / reservoir
    // provenances: must never error or violate the bound invariants.
    let mut rng = seeded_rng(0xAE);
    for case in 0..CASES {
        let n1 = rng.random_range(1u64..2_000);
        let n2 = rng.random_range(1u64..2_000);
        let scheme1 = rng.random_range(0u8..3);
        let scheme2 = rng.random_range(0u8..3);
        let n_f = rng.random_range(8u64..64);
        let policy = FootprintPolicy::with_value_budget(n_f);
        let build = |scheme: u8, range: std::ops::Range<u64>, rng: &mut SmallRng| -> Sample<u64> {
            let n = range.end - range.start;
            match scheme {
                0 => HybridReservoir::new(policy).sample_batch(range, rng),
                1 => HybridBernoulli::new(policy, n).sample_batch(range, rng),
                // Tiny stream with duplicates: forces exhaustive outcomes.
                _ => HybridReservoir::new(policy).sample_batch(range.map(|v| v % 7), rng),
            }
        };
        let s1 = build(scheme1, 0..n1, &mut rng);
        let s2 = build(scheme2, n1..n1 + n2, &mut rng);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        assert_eq!(m.parent_size(), n1 + n2, "case {case}");
        assert!(m.slots() <= n_f);
        if m.kind() != SampleKind::Exhaustive {
            assert!(m.size() <= n_f, "case {case}");
        }
    }
}

#[test]
fn merged_sample_values_subset_of_inputs() {
    let mut rng = seeded_rng(0xAF);
    for case in 0..CASES {
        let n1 = rng.random_range(10u64..500);
        let n2 = rng.random_range(10u64..500);
        let policy = FootprintPolicy::with_value_budget(32);
        // Distinguishable domains: partition 1 even, partition 2 odd.
        let s1 = HybridReservoir::new(policy).sample_batch((0..n1).map(|v| v * 2), &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch((0..n2).map(|v| v * 2 + 1), &mut rng);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        let from_p1: u64 = m
            .histogram()
            .iter()
            .filter(|(v, _)| *v % 2 == 0)
            .map(|(_, c)| c)
            .sum();
        let from_p2 = m.size() - from_p1;
        assert!(from_p1 <= n1, "case {case}");
        assert!(from_p2 <= n2, "case {case}");
    }
}
