//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §5: footprint bounds, histogram/bag equivalence, purge
//! semantics, merge cardinalities, and codec round-trips.

use proptest::prelude::*;
use sample_warehouse::sampling::histogram::CompactHistogram;
use sample_warehouse::sampling::purge::{purge_bernoulli, purge_reservoir};
use sample_warehouse::sampling::{
    merge, FootprintPolicy, HybridBernoulli, HybridReservoir, Sample, SampleKind, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::codec::{decode_sample, encode_sample};

/// Strategy: a bag of small integers (lots of duplicates) of length 0..300.
fn bag() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..40, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_matches_multiset_model(values in bag()) {
        let hist = CompactHistogram::from_bag(values.clone());
        // Model: sorted bag.
        let mut model = values.clone();
        model.sort_unstable();
        let mut expanded = hist.expand();
        expanded.sort_unstable();
        prop_assert_eq!(&expanded, &model);
        prop_assert_eq!(hist.total() as usize, values.len());
        // Slots never exceed total; distinct counts match dedup.
        let mut dedup = model.clone();
        dedup.dedup();
        prop_assert_eq!(hist.distinct(), dedup.len());
        prop_assert!(hist.slots() <= hist.total());
        // Singleton accounting.
        let singles = dedup
            .iter()
            .filter(|v| values.iter().filter(|x| x == v).count() == 1)
            .count() as u64;
        prop_assert_eq!(hist.singletons(), singles);
    }

    #[test]
    fn histogram_join_is_multiset_union(a in bag(), b in bag()) {
        let mut ha = CompactHistogram::from_bag(a.clone());
        let hb = CompactHistogram::from_bag(b.clone());
        let predicted = ha.joined_slots(&hb);
        ha.join(hb);
        prop_assert_eq!(ha.slots(), predicted);
        let mut combined = a;
        combined.extend(b);
        combined.sort_unstable();
        let mut expanded = ha.expand();
        expanded.sort_unstable();
        prop_assert_eq!(expanded, combined);
    }

    #[test]
    fn purge_bernoulli_is_subsample(values in bag(), q in 0.0f64..=1.0, seed in 0u64..1000) {
        let orig = CompactHistogram::from_bag(values);
        let mut h = orig.clone();
        let mut rng = seeded_rng(seed);
        purge_bernoulli(&mut h, q, &mut rng);
        prop_assert!(h.total() <= orig.total());
        for (v, c) in h.iter() {
            prop_assert!(c <= orig.count(v), "count inflated for {:?}", v);
        }
        // Internal bookkeeping still consistent.
        prop_assert_eq!(&CompactHistogram::from_bag(h.expand()), &h);
    }

    #[test]
    fn purge_reservoir_exact_size(values in bag(), m in 0u64..400, seed in 0u64..1000) {
        let orig = CompactHistogram::from_bag(values);
        let mut h = orig.clone();
        let mut rng = seeded_rng(seed);
        purge_reservoir(&mut h, m, &mut rng);
        prop_assert_eq!(h.total(), orig.total().min(m));
        for (v, c) in h.iter() {
            prop_assert!(c <= orig.count(v));
        }
        prop_assert_eq!(&CompactHistogram::from_bag(h.expand()), &h);
    }

    #[test]
    fn hb_footprint_never_exceeded(
        values in prop::collection::vec(0u64..10_000, 1..2_000),
        n_f in 8u64..128,
        seed in 0u64..1000,
    ) {
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut rng = seeded_rng(seed);
        let n = values.len() as u64;
        let mut hb = HybridBernoulli::new(policy, n);
        for v in &values {
            hb.observe(*v, &mut rng);
            prop_assert!(hb.current_slots() <= n_f, "slots {} > n_f {n_f}", hb.current_slots());
        }
        let s = hb.finalize(&mut rng);
        prop_assert!(s.slots() <= n_f);
        prop_assert!(s.kind() == SampleKind::Exhaustive || s.size() <= n_f);
        prop_assert_eq!(s.parent_size(), n);
    }

    #[test]
    fn hr_footprint_never_exceeded(
        values in prop::collection::vec(0u64..10_000, 1..2_000),
        n_f in 8u64..128,
        seed in 0u64..1000,
    ) {
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut rng = seeded_rng(seed);
        let mut hr = HybridReservoir::new(policy);
        for v in &values {
            hr.observe(*v, &mut rng);
            prop_assert!(hr.current_slots() <= n_f);
        }
        let s = hr.finalize(&mut rng);
        prop_assert!(s.slots() <= n_f);
        // HR: non-exhaustive samples have exactly n_F elements *or* the
        // stream ended with the lazy purge pending a smaller total.
        if s.kind() == SampleKind::Reservoir {
            prop_assert!(s.size() <= n_f);
        }
    }

    #[test]
    fn sampled_values_come_from_stream(
        values in prop::collection::vec(0u64..50, 1..500),
        seed in 0u64..1000,
    ) {
        let policy = FootprintPolicy::with_value_budget(16);
        let mut rng = seeded_rng(seed);
        let orig = CompactHistogram::from_bag(values.clone());
        let s = HybridReservoir::new(policy).sample_batch(values, &mut rng);
        for (v, c) in s.histogram().iter() {
            prop_assert!(c <= orig.count(v), "sample invented occurrences of {:?}", v);
        }
    }

    #[test]
    fn merge_size_and_parent_invariants(
        n1 in 1u64..3_000,
        n2 in 1u64..3_000,
        n_f in 8u64..64,
        seed in 0u64..1000,
    ) {
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut rng = seeded_rng(seed);
        let s1 = HybridReservoir::new(policy).sample_batch(0..n1, &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch(n1..n1 + n2, &mut rng);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        prop_assert_eq!(m.parent_size(), n1 + n2);
        prop_assert!(m.size() <= n_f.max(m.parent_size().min(n_f)),
            "merged size {} exceeds bound {n_f}", m.size());
        prop_assert!(m.slots() <= n_f);
        // Values come from the union domain.
        for (v, _) in m.histogram().iter() {
            prop_assert!(*v < n1 + n2);
        }
    }

    #[test]
    fn codec_roundtrip_arbitrary_samples(
        values in bag(),
        n_f in 8u64..128,
        seed in 0u64..1000,
    ) {
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut rng = seeded_rng(seed);
        let s: Sample<u64> = HybridReservoir::new(policy)
            .sample_batch(values, &mut rng);
        let bytes = encode_sample(&s);
        let back: Sample<u64> = decode_sample(&bytes).unwrap();
        prop_assert_eq!(back.histogram(), s.histogram());
        prop_assert_eq!(back.kind(), s.kind());
        prop_assert_eq!(back.parent_size(), s.parent_size());
        prop_assert_eq!(back.policy(), s.policy());
    }

    #[test]
    fn codec_rejects_random_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Random bytes must never panic — either decode (vanishingly
        // unlikely) or produce a clean error.
        let _ = decode_sample::<u64>(&bytes);
    }

    #[test]
    fn alias_table_encodes_arbitrary_weights(
        weights in prop::collection::vec(0.0f64..100.0, 1..64),
    ) {
        use sample_warehouse::variates::alias::AliasTable;
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let table = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        let probs = table.outcome_probabilities();
        for (p, w) in probs.iter().zip(&weights) {
            prop_assert!((p - w / total).abs() < 1e-9, "{p} vs {}", w / total);
        }
    }

    #[test]
    fn hypergeometric_recurrence_matches_direct(
        d1 in 1u64..200,
        d2 in 1u64..200,
        k_frac in 0.0f64..1.0,
    ) {
        use sample_warehouse::variates::Hypergeometric;
        let k = ((d1 + d2) as f64 * k_frac) as u64;
        let h = Hypergeometric::new(d1, d2, k);
        let sum: f64 = h.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for l in 0..=k {
            prop_assert!((h.pmf(l) - h.pmf_direct(l)).abs() < 1e-9, "l={l}");
        }
    }

    #[test]
    fn merge_fuzz_across_provenances(
        n1 in 1u64..2_000,
        n2 in 1u64..2_000,
        scheme1 in 0u8..3,
        scheme2 in 0u8..3,
        n_f in 8u64..64,
        seed in 0u64..500,
    ) {
        // Merge any combination of exhaustive / Bernoulli / reservoir
        // provenances: must never error or violate the bound invariants.
        let policy = FootprintPolicy::with_value_budget(n_f);
        let mut rng = seeded_rng(seed);
        let mut build = |scheme: u8, range: std::ops::Range<u64>| -> Sample<u64> {
            let n = range.end - range.start;
            match scheme {
                0 => HybridReservoir::new(policy).sample_batch(range, &mut rng),
                1 => HybridBernoulli::new(policy, n).sample_batch(range, &mut rng),
                // Tiny stream with duplicates: forces exhaustive outcomes.
                _ => HybridReservoir::new(policy)
                    .sample_batch(range.map(|v| v % 7), &mut rng),
            }
        };
        let s1 = build(scheme1, 0..n1);
        let s2 = build(scheme2, n1..n1 + n2);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        prop_assert_eq!(m.parent_size(), n1 + n2);
        prop_assert!(m.slots() <= n_f);
        if m.kind() != SampleKind::Exhaustive {
            prop_assert!(m.size() <= n_f);
        }
    }

    #[test]
    fn merged_sample_values_subset_of_inputs(
        n1 in 10u64..500,
        n2 in 10u64..500,
        seed in 0u64..500,
    ) {
        let policy = FootprintPolicy::with_value_budget(32);
        let mut rng = seeded_rng(seed);
        // Distinguishable domains: partition 1 even, partition 2 odd.
        let s1 = HybridReservoir::new(policy)
            .sample_batch((0..n1).map(|v| v * 2), &mut rng);
        let s2 = HybridReservoir::new(policy)
            .sample_batch((0..n2).map(|v| v * 2 + 1), &mut rng);
        let m = merge(s1, s2, 1e-3, &mut rng).unwrap();
        let from_p1: u64 = m.histogram().iter().filter(|(v, _)| *v % 2 == 0).map(|(_, c)| c).sum();
        let from_p2 = m.size() - from_p1;
        prop_assert!(from_p1 <= n1);
        prop_assert!(from_p2 <= n2);
    }
}
