//! Determinism smoke test: the entire sample-then-merge pipeline must be a
//! pure function of the seed. Two runs of Algorithm HB and Algorithm HR over
//! the same partitions with the same seed must produce **byte-identical**
//! samples through the warehouse codec — any divergence means hidden
//! iteration-order or entropy dependence crept into a sampler or merge.

use sample_warehouse::sampling::{
    merge_all, FootprintPolicy, HybridBernoulli, HybridReservoir, Sample, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::encode_sample;

const PARTS: u64 = 6;
const PER_PART: u64 = 2_000;
const N_F: u64 = 32;
const P_BOUND: f64 = 1e-3;

/// Sample every partition with HR and merge the partials, returning the
/// merged sample's canonical byte encoding.
fn hr_pipeline(seed: u64) -> Vec<u8> {
    let mut rng = seeded_rng(seed);
    let policy = FootprintPolicy::with_value_budget(N_F);
    let parts: Vec<Sample<u64>> = (0..PARTS)
        .map(|p| {
            HybridReservoir::new(policy).sample_batch(p * PER_PART..(p + 1) * PER_PART, &mut rng)
        })
        .collect();
    let merged = merge_all(parts, P_BOUND, &mut rng).expect("uniform partitions always merge");
    encode_sample(&merged)
}

/// Same pipeline through Algorithm HB.
fn hb_pipeline(seed: u64) -> Vec<u8> {
    let mut rng = seeded_rng(seed);
    let policy = FootprintPolicy::with_value_budget(N_F);
    let parts: Vec<Sample<u64>> = (0..PARTS)
        .map(|p| {
            HybridBernoulli::with_p_bound(policy, PER_PART, P_BOUND)
                .sample_batch(p * PER_PART..(p + 1) * PER_PART, &mut rng)
        })
        .collect();
    let merged = merge_all(parts, P_BOUND, &mut rng).expect("uniform partitions always merge");
    encode_sample(&merged)
}

#[test]
fn uniformity_smoke() {
    // Same seed => byte-identical merged samples, for both hybrid schemes.
    for seed in [1u64, 7, 42] {
        assert_eq!(
            hr_pipeline(seed),
            hr_pipeline(seed),
            "HR pipeline diverged under seed {seed}"
        );
        assert_eq!(
            hb_pipeline(seed),
            hb_pipeline(seed),
            "HB pipeline diverged under seed {seed}"
        );
    }
    // Different seeds must actually exercise the randomness: a 32-of-12000
    // subset colliding across seeds would be astronomically unlikely.
    assert_ne!(hr_pipeline(1), hr_pipeline(2), "HR ignores its seed");
    assert_ne!(hb_pipeline(1), hb_pipeline(2), "HB ignores its seed");
}
