//! Cross-crate integration tests: workload generation → partitioned
//! sampling → warehouse roll-in → union queries → AQP estimation.

use sample_warehouse::aqp::estimators::{estimate_avg, estimate_count, estimate_sum};
use sample_warehouse::sampling::{FootprintPolicy, SampleKind};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey, SampleWarehouse};
use sample_warehouse::workloads::{DataDistribution, DataSpec};

fn key(seq: u64) -> PartitionKey {
    PartitionKey {
        dataset: DatasetId(1),
        partition: PartitionId::seq(seq),
    }
}

#[test]
fn pipeline_hr_uniform_data() {
    let mut rng = seeded_rng(1);
    let policy = FootprintPolicy::with_value_budget(4096);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let spec = DataSpec::new(DataDistribution::PAPER_UNIFORM, 500_000, 3);
    for (i, part) in spec.partitions(10).into_iter().enumerate() {
        wh.ingest_partition(key(i as u64), part, None, &mut rng)
            .unwrap();
    }
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert_eq!(s.parent_size(), 500_000);
    assert_eq!(s.size(), 4096);

    // Values are uniform over 1..=1_000_000: COUNT(v <= 250_000) ~ 125_000.
    let c = estimate_count(&s, |v| *v <= 250_000);
    let (lo, hi) = c.confidence_interval(0.999);
    assert!(
        (lo..=hi).contains(&125_000.0) || (c.value - 125_000.0).abs() / 125_000.0 < 0.05,
        "count {} CI [{lo}, {hi}]",
        c.value
    );

    // AVG ~ 500_000.
    let a = estimate_avg(&s, |_| true);
    assert!(
        (a.value - 500_000.0).abs() / 500_000.0 < 0.05,
        "avg {}",
        a.value
    );
}

#[test]
fn pipeline_hb_known_sizes() {
    let mut rng = seeded_rng(2);
    let policy = FootprintPolicy::with_value_budget(2048);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridBernoulli, 1e-3);
    let spec = DataSpec::new(DataDistribution::Unique, 200_000, 0);
    let per = 200_000 / 8;
    for (i, part) in spec.partitions(8).into_iter().enumerate() {
        wh.ingest_partition(key(i as u64), part, Some(per), &mut rng)
            .unwrap();
    }
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert!(s.size() <= 2048);
    assert!(
        s.size() > 1500,
        "merged HB sample suspiciously small: {}",
        s.size()
    );
    // SUM over unique 1..=N is N(N+1)/2.
    let sum = estimate_sum(&s, |_| true);
    let truth = 200_000.0 * 200_001.0 / 2.0;
    assert!(
        (sum.value - truth).abs() / truth < 0.05,
        "sum {} vs {truth}",
        sum.value
    );
}

#[test]
fn zipf_partitions_stay_exhaustive_and_merge_exactly() {
    // Paper footnote 5: Zipfian data has few distinct values, so samples
    // remain exhaustive histograms — and merges of exhaustive samples give
    // exact answers.
    let mut rng = seeded_rng(3);
    let policy = FootprintPolicy::with_value_budget(8192);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let spec = DataSpec::new(DataDistribution::PAPER_ZIPF, 100_000, 4);
    let parts = spec.partitions(4);
    // Ground truth over the *partitioned* generation (each partition has an
    // independent value stream).
    let truth: u64 = spec
        .partitions(4)
        .into_iter()
        .flatten()
        .filter(|&v| v == 1)
        .count() as u64;
    for (i, part) in parts.into_iter().enumerate() {
        wh.ingest_partition(key(i as u64), part, None, &mut rng)
            .unwrap();
    }
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert_eq!(s.kind(), SampleKind::Exhaustive);
    assert_eq!(s.size(), 100_000);
    let c = estimate_count(&s, |v| *v == 1);
    assert!(c.exact);
    assert_eq!(c.value, truth as f64);
}

#[test]
fn partial_union_queries_cover_only_selection() {
    let mut rng = seeded_rng(4);
    let policy = FootprintPolicy::with_value_budget(512);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    // Partition i holds values [i*10_000, (i+1)*10_000).
    for i in 0..10u64 {
        wh.ingest_partition(key(i), i * 10_000..(i + 1) * 10_000, None, &mut rng)
            .unwrap();
    }
    let s = wh
        .query_union(DatasetId(1), |p| (3..=5).contains(&p.seq), &mut rng)
        .unwrap();
    assert_eq!(s.parent_size(), 30_000);
    for (v, _) in s.histogram().iter() {
        assert!(
            (30_000..60_000).contains(v),
            "value {v} outside selected partitions"
        );
    }
}

#[test]
fn mixed_provenance_partitions_merge() {
    // Small partitions finish exhaustive, large ones as reservoir samples;
    // the union query must handle the mix.
    let mut rng = seeded_rng(5);
    let policy = FootprintPolicy::with_value_budget(256);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    wh.ingest_partition(key(0), 0..100u64, None, &mut rng)
        .unwrap(); // exhaustive
    wh.ingest_partition(key(1), 100..50_100u64, None, &mut rng)
        .unwrap(); // reservoir
    wh.ingest_partition(key(2), 50_100..50_200u64, None, &mut rng)
        .unwrap(); // exhaustive
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert_eq!(s.parent_size(), 50_200);
    assert!(s.size() <= 256);
}

#[test]
fn string_valued_pipeline() {
    // The machinery is generic over value types: run a full
    // sample-merge-estimate pipeline over String values.
    use sample_warehouse::aqp::estimators::estimate_count;
    let mut rng = seeded_rng(21);
    let policy = FootprintPolicy::with_value_budget(512);
    let wh: SampleWarehouse<String> =
        SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let cities = ["tokyo", "lagos", "lima", "oslo", "pune"];
    for p in 0..4u64 {
        let values = (0..25_000u64)
            .map(move |i| format!("{}-{}", cities[(i % 5) as usize], (p * 25_000 + i) % 97));
        wh.ingest_partition(key(p), values, None, &mut rng).unwrap();
    }
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert_eq!(s.parent_size(), 100_000);
    assert!(s.size() <= 512);
    // ~20% of values start with "tokyo".
    let c = estimate_count(&s, |v| v.starts_with("tokyo"));
    assert!(
        (c.value - 20_000.0).abs() < 6.0 * c.std_error.max(500.0),
        "tokyo count {} (se {})",
        c.value,
        c.std_error
    );
}

#[test]
fn high_throughput_partition_count() {
    // Many small partitions (stress the catalog + serial merge chain).
    let mut rng = seeded_rng(6);
    let policy = FootprintPolicy::with_value_budget(128);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let parts: Vec<_> = (0..256u64).map(|p| p * 100..(p + 1) * 100).collect();
    wh.ingest_partitions_parallel(DatasetId(1), parts, None, 4, 9, 0)
        .unwrap();
    assert_eq!(wh.catalog().len(), 256);
    let s = wh.query_all(DatasetId(1), &mut rng).unwrap();
    assert_eq!(s.parent_size(), 25_600);
    assert!(s.size() <= 128);
}
