//! Integration tests of the shadowed warehouse: ingest into both sides,
//! compare approximate and exact answers.

use sample_warehouse::aqp::query::{Predicate, Query};
use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey};
use sample_warehouse::ShadowedWarehouse;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swh-shadow-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(seq: u64) -> PartitionKey {
    PartitionKey {
        dataset: DatasetId(1),
        partition: PartitionId::seq(seq),
    }
}

#[test]
fn approx_tracks_exact_within_intervals() {
    let root = tmp_root("acc");
    let policy = FootprintPolicy::with_value_budget(4096);
    let mut wh = ShadowedWarehouse::open(&root, policy, Algorithm::HybridReservoir, 99).unwrap();
    for p in 0..8u64 {
        let lo = (p * 50_000) as i64;
        wh.ingest_partition(key(p), lo..lo + 50_000).unwrap();
    }
    let queries = vec![
        Query::count(Predicate::ModEq {
            modulus: 7,
            remainder: 0,
        }),
        Query::sum(Predicate::Between { lo: 0, hi: 99_999 }),
        Query::avg(Predicate::True),
        Query::quantile(0.5, Predicate::True),
    ];
    let report = wh.accuracy_report(DatasetId(1), &queries).unwrap();
    assert_eq!(report.len(), 4);
    for row in &report {
        assert!(
            row.relative_error < 0.10,
            "{:?}: est {} vs exact {} (rel {:.4})",
            row.query,
            row.estimate.value,
            row.exact,
            row.relative_error
        );
    }
    // Point aggregates (not quantiles) should mostly be covered by the CI.
    let covered = report.iter().take(3).filter(|r| r.covered_95).count();
    assert!(covered >= 2, "only {covered}/3 point estimates covered");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn exact_answers_are_truly_exact() {
    let root = tmp_root("exact");
    let policy = FootprintPolicy::with_value_budget(256);
    let mut wh = ShadowedWarehouse::open(&root, policy, Algorithm::HybridBernoulli, 1).unwrap();
    wh.ingest_partition(key(0), 0..10_000i64).unwrap();
    wh.ingest_partition(key(1), 10_000..25_000i64).unwrap();
    let q = Query::count(Predicate::ModEq {
        modulus: 5,
        remainder: 3,
    });
    assert_eq!(wh.answer_exact(DatasetId(1), &q).unwrap(), 5_000.0);
    let q = Query::sum(Predicate::Between { lo: 0, hi: 9 });
    assert_eq!(wh.answer_exact(DatasetId(1), &q).unwrap(), 45.0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn roll_out_removes_from_both_sides() {
    let root = tmp_root("rollout");
    let policy = FootprintPolicy::with_value_budget(128);
    let mut wh = ShadowedWarehouse::open(&root, policy, Algorithm::HybridReservoir, 2).unwrap();
    wh.ingest_partition(key(0), 0..1_000i64).unwrap();
    wh.ingest_partition(key(1), 1_000..3_000i64).unwrap();
    wh.roll_out(key(0)).unwrap();
    // Exact side no longer sees partition 0.
    let q = Query::count(Predicate::True);
    assert_eq!(wh.answer_exact(DatasetId(1), &q).unwrap(), 2_000.0);
    // Sample side coverage shrinks accordingly.
    let s = wh.dataset_sample(DatasetId(1)).unwrap();
    assert_eq!(s.parent_size(), 2_000);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn shrinking_footprint_degrades_accuracy_monotonically_in_expectation() {
    // Not a strict monotonicity test (randomness), but the tiny-footprint
    // estimate should have a visibly wider interval than the big one.
    let root_a = tmp_root("bigf");
    let root_b = tmp_root("smallf");
    let mk = |root: &std::path::Path, n_f: u64| {
        let mut wh = ShadowedWarehouse::open(
            root,
            FootprintPolicy::with_value_budget(n_f),
            Algorithm::HybridReservoir,
            7,
        )
        .unwrap();
        for p in 0..4u64 {
            let lo = (p * 25_000) as i64;
            wh.ingest_partition(key(p), lo..lo + 25_000).unwrap();
        }
        wh
    };
    let mut big = mk(&root_a, 8_192);
    let mut small = mk(&root_b, 128);
    let q = Query::count(Predicate::ModEq {
        modulus: 2,
        remainder: 0,
    });
    let e_big = big.answer_approx(DatasetId(1), &q).unwrap();
    let e_small = small.answer_approx(DatasetId(1), &q).unwrap();
    assert!(
        e_big.std_error < e_small.std_error,
        "big-footprint SE {} should beat small-footprint SE {}",
        e_big.std_error,
        e_small.std_error
    );
    std::fs::remove_dir_all(&root_a).ok();
    std::fs::remove_dir_all(&root_b).ok();
}
