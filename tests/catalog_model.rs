//! Model-based testing of the warehouse catalog: random operation
//! sequences executed against both the real `Catalog` and a trivial
//! in-memory model must agree at every step.
//!
//! Operation sequences are generated from a seeded RNG (small key spaces so
//! duplicates and missing keys are common), one sequence per case index.

use rand::rngs::SmallRng;
use rand::Rng;
use sample_warehouse::sampling::{FootprintPolicy, HybridReservoir, Sample, Sampler};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::catalog::{Catalog, CatalogError};
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    RollIn { dataset: u64, seq: u64, parent: u64 },
    RollOut { dataset: u64, seq: u64 },
    Get { dataset: u64, seq: u64 },
    Partitions { dataset: u64 },
    UnionAll { dataset: u64 },
}

fn random_op(rng: &mut SmallRng) -> Op {
    // Small key spaces so collisions (duplicates, missing keys) are common.
    let dataset = rng.random_range(0u64..3);
    let seq = rng.random_range(0u64..5);
    match rng.random_range(0u8..5) {
        0 => Op::RollIn {
            dataset,
            seq,
            parent: rng.random_range(1u64..500),
        },
        1 => Op::RollOut { dataset, seq },
        2 => Op::Get { dataset, seq },
        3 => Op::Partitions { dataset },
        _ => Op::UnionAll { dataset },
    }
}

fn key(dataset: u64, seq: u64) -> PartitionKey {
    PartitionKey {
        dataset: DatasetId(dataset),
        partition: PartitionId::seq(seq),
    }
}

#[test]
fn catalog_agrees_with_model() {
    let mut rng = seeded_rng(7);
    let policy = FootprintPolicy::with_value_budget(16);
    for case in 0..48u64 {
        let n_ops = rng.random_range(1..60usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let catalog: Catalog<u64> = Catalog::new();
        // Model: (dataset, seq) -> sample.
        let mut model: BTreeMap<(u64, u64), Sample<u64>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::RollIn {
                    dataset,
                    seq,
                    parent,
                } => {
                    let sample = HybridReservoir::new(policy).sample_batch(0..parent, &mut rng);
                    let real = catalog.roll_in(key(dataset, seq), sample.clone());
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        model.entry((dataset, seq))
                    {
                        assert!(real.is_ok(), "case {case}");
                        e.insert(sample);
                    } else {
                        assert!(
                            matches!(real, Err(CatalogError::DuplicatePartition(_))),
                            "case {case}"
                        );
                    }
                }
                Op::RollOut { dataset, seq } => {
                    let real = catalog.roll_out(key(dataset, seq));
                    match model.remove(&(dataset, seq)) {
                        Some(expected) => {
                            assert_eq!(real.unwrap().sample, expected, "case {case}");
                        }
                        None => assert!(real.is_err(), "case {case}"),
                    }
                }
                Op::Get { dataset, seq } => {
                    let real = catalog.get(key(dataset, seq));
                    match model.get(&(dataset, seq)) {
                        Some(expected) => assert_eq!(&real.unwrap(), expected, "case {case}"),
                        None => assert!(real.is_err(), "case {case}"),
                    }
                }
                Op::Partitions { dataset } => {
                    let expected: Vec<u64> = model
                        .keys()
                        .filter(|(d, _)| *d == dataset)
                        .map(|(_, s)| *s)
                        .collect();
                    match catalog.partitions(DatasetId(dataset)) {
                        Ok(real) => {
                            let real: Vec<u64> = real.into_iter().map(|p| p.seq).collect();
                            assert_eq!(real, expected, "case {case}");
                        }
                        Err(_) => assert!(expected.is_empty(), "case {case}"),
                    }
                }
                Op::UnionAll { dataset } => {
                    let expected_parent: u64 = model
                        .iter()
                        .filter(|((d, _), _)| *d == dataset)
                        .map(|(_, s)| s.parent_size())
                        .sum();
                    let present = model.keys().any(|(d, _)| *d == dataset);
                    match catalog.union_sample(DatasetId(dataset), |_| true, 1e-3, &mut rng) {
                        Ok(s) => {
                            assert!(present, "case {case}");
                            assert_eq!(s.parent_size(), expected_parent, "case {case}");
                            assert!(s.size() <= 16, "case {case}");
                        }
                        Err(_) => assert!(!present, "case {case}"),
                    }
                }
            }
            // Global invariant: total partition count agrees.
            assert_eq!(catalog.len(), model.len(), "case {case}");
        }
    }
}
