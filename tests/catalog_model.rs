//! Model-based testing of the warehouse catalog: random operation
//! sequences executed against both the real `Catalog` and a trivial
//! in-memory model must agree at every step.

use proptest::prelude::*;
use sample_warehouse::sampling::{FootprintPolicy, HybridReservoir, Sample, Sampler};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::catalog::{Catalog, CatalogError};
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    RollIn { dataset: u64, seq: u64, parent: u64 },
    RollOut { dataset: u64, seq: u64 },
    Get { dataset: u64, seq: u64 },
    Partitions { dataset: u64 },
    UnionAll { dataset: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key spaces so collisions (duplicates, missing keys) are common.
    let ds = 0u64..3;
    let seq = 0u64..5;
    prop_oneof![
        (ds.clone(), seq.clone(), 1u64..500).prop_map(|(dataset, seq, parent)| Op::RollIn {
            dataset,
            seq,
            parent
        }),
        (ds.clone(), seq.clone()).prop_map(|(dataset, seq)| Op::RollOut { dataset, seq }),
        (ds.clone(), seq.clone()).prop_map(|(dataset, seq)| Op::Get { dataset, seq }),
        ds.clone().prop_map(|dataset| Op::Partitions { dataset }),
        ds.prop_map(|dataset| Op::UnionAll { dataset }),
    ]
}

fn key(dataset: u64, seq: u64) -> PartitionKey {
    PartitionKey { dataset: DatasetId(dataset), partition: PartitionId::seq(seq) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn catalog_agrees_with_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut rng = seeded_rng(7);
        let policy = FootprintPolicy::with_value_budget(16);
        let catalog: Catalog<u64> = Catalog::new();
        // Model: (dataset, seq) -> sample.
        let mut model: BTreeMap<(u64, u64), Sample<u64>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::RollIn { dataset, seq, parent } => {
                    let sample = HybridReservoir::new(policy)
                        .sample_batch(0..parent, &mut rng);
                    let real = catalog.roll_in(key(dataset, seq), sample.clone());
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        model.entry((dataset, seq))
                    {
                        prop_assert!(real.is_ok());
                        e.insert(sample);
                    } else {
                        prop_assert!(matches!(
                            real,
                            Err(CatalogError::DuplicatePartition(_))
                        ));
                    }
                }
                Op::RollOut { dataset, seq } => {
                    let real = catalog.roll_out(key(dataset, seq));
                    match model.remove(&(dataset, seq)) {
                        Some(expected) => {
                            prop_assert_eq!(real.unwrap().sample, expected);
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Get { dataset, seq } => {
                    let real = catalog.get(key(dataset, seq));
                    match model.get(&(dataset, seq)) {
                        Some(expected) => prop_assert_eq!(&real.unwrap(), expected),
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Partitions { dataset } => {
                    let expected: Vec<u64> = model
                        .keys()
                        .filter(|(d, _)| *d == dataset)
                        .map(|(_, s)| *s)
                        .collect();
                    match catalog.partitions(DatasetId(dataset)) {
                        Ok(real) => {
                            let real: Vec<u64> = real.into_iter().map(|p| p.seq).collect();
                            prop_assert_eq!(real, expected);
                        }
                        Err(_) => prop_assert!(expected.is_empty()),
                    }
                }
                Op::UnionAll { dataset } => {
                    let expected_parent: u64 = model
                        .iter()
                        .filter(|((d, _), _)| *d == dataset)
                        .map(|(_, s)| s.parent_size())
                        .sum();
                    let present = model.keys().any(|(d, _)| *d == dataset);
                    match catalog.union_sample(DatasetId(dataset), |_| true, 1e-3, &mut rng) {
                        Ok(s) => {
                            prop_assert!(present);
                            prop_assert_eq!(s.parent_size(), expected_parent);
                            prop_assert!(s.size() <= 16);
                        }
                        Err(_) => prop_assert!(!present),
                    }
                }
            }
            // Global invariant: total partition count agrees.
            prop_assert_eq!(catalog.len(), model.len());
        }
    }
}
