//! Subset-level uniformity tests — the strongest form of the paper's
//! definition: a scheme is uniform iff all samples of equal size are
//! equally likely (`Γ(S; D) = Γ(S'; D)` whenever `|S| = |S'|`).
//!
//! Element-inclusion tests (in the unit suites) check first moments only;
//! here we enumerate *entire subsets* on tiny populations and chi-square
//! the full subset distribution.

use sample_warehouse::sampling::{
    hr_merge, FootprintPolicy, HybridReservoir, Sample, SampleKind, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::variates::stats::{chi_square_p_value, chi_square_statistic};
use std::collections::HashMap;

/// Canonical key of a sample's value set (all-distinct populations).
fn subset_key(s: &Sample<u64>) -> Vec<u64> {
    let mut v: Vec<u64> = s.histogram().iter().map(|(v, _)| *v).collect();
    v.sort_unstable();
    v
}

/// Number of `k`-subsets of an `n`-set.
fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

#[test]
fn hr_subset_distribution_is_uniform() {
    // Population {0..6}, n_F = 3: HR yields exactly C(6,3) = 20 possible
    // samples; each must appear with probability 1/20.
    let mut rng = seeded_rng(1);
    let (n, k, trials) = (6u64, 3u64, 60_000usize);
    let policy = FootprintPolicy::with_value_budget(k);
    let mut freq: HashMap<Vec<u64>, u64> = HashMap::new();
    for _ in 0..trials {
        let s = HybridReservoir::new(policy).sample_batch(0..n, &mut rng);
        assert_eq!(s.size(), k);
        *freq.entry(subset_key(&s)).or_insert(0) += 1;
    }
    let subsets = choose(n, k);
    assert_eq!(freq.len() as u64, subsets, "not all subsets observed");
    let obs: Vec<u64> = freq.values().copied().collect();
    let exp = vec![trials as f64 / subsets as f64; subsets as usize];
    let stat = chi_square_statistic(&obs, &exp);
    let pv = chi_square_p_value(stat, (subsets - 1) as f64);
    assert!(
        pv > 1e-4,
        "HR subset distribution not uniform: chi2={stat:.1} p={pv:.2e}"
    );
}

#[test]
fn hr_merge_subset_distribution_is_uniform() {
    // Two partitions {0..4} and {4..8}, each sampled to 2 elements, merged
    // to k = 2 over the 8-element union: all C(8,2) = 28 subsets equally
    // likely (Theorem 1).
    let mut rng = seeded_rng(2);
    let trials = 80_000usize;
    let policy = FootprintPolicy::with_value_budget(2);
    let mut freq: HashMap<Vec<u64>, u64> = HashMap::new();
    for _ in 0..trials {
        let s1 = HybridReservoir::new(policy).sample_batch(0..4u64, &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch(4..8u64, &mut rng);
        assert_eq!(s1.kind(), SampleKind::Reservoir);
        assert_eq!(s2.kind(), SampleKind::Reservoir);
        let m = hr_merge(s1, s2, &mut rng).unwrap();
        assert_eq!(m.size(), 2);
        *freq.entry(subset_key(&m)).or_insert(0) += 1;
    }
    let subsets = choose(8, 2); // 28
    assert_eq!(freq.len() as u64, subsets, "not all subsets observed");
    let obs: Vec<u64> = freq.values().copied().collect();
    let exp = vec![trials as f64 / subsets as f64; subsets as usize];
    let stat = chi_square_statistic(&obs, &exp);
    let pv = chi_square_p_value(stat, (subsets - 1) as f64);
    assert!(
        pv > 1e-4,
        "merged subset distribution not uniform: chi2={stat:.1} p={pv:.2e}"
    );
}

#[test]
fn hr_merge_unequal_partitions_subset_uniform() {
    // Asymmetric partitions: {0..3} (3 elements) and {3..9} (6 elements).
    // Per-partition samples of size 2; merged k = 2 over 9 elements:
    // C(9,2) = 36 equally likely pairs.
    let mut rng = seeded_rng(3);
    let trials = 90_000usize;
    let policy = FootprintPolicy::with_value_budget(2);
    let mut freq: HashMap<Vec<u64>, u64> = HashMap::new();
    for _ in 0..trials {
        let s1 = HybridReservoir::new(policy).sample_batch(0..3u64, &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch(3..9u64, &mut rng);
        let m = hr_merge(s1, s2, &mut rng).unwrap();
        assert_eq!(m.size(), 2);
        *freq.entry(subset_key(&m)).or_insert(0) += 1;
    }
    let subsets = choose(9, 2); // 36
    assert_eq!(freq.len() as u64, subsets);
    let obs: Vec<u64> = freq.values().copied().collect();
    let exp = vec![trials as f64 / subsets as f64; subsets as usize];
    let stat = chi_square_statistic(&obs, &exp);
    let pv = chi_square_p_value(stat, (subsets - 1) as f64);
    assert!(
        pv > 1e-4,
        "asymmetric merge not uniform: chi2={stat:.1} p={pv:.2e}"
    );
}

#[test]
fn three_way_merge_chain_subset_uniform() {
    // Three partitions of 3 elements each, samples of size 2, chained
    // pairwise merges: final k = 2 over 9 elements, 36 subsets.
    let mut rng = seeded_rng(4);
    let trials = 90_000usize;
    let policy = FootprintPolicy::with_value_budget(2);
    let mut freq: HashMap<Vec<u64>, u64> = HashMap::new();
    for _ in 0..trials {
        let s1 = HybridReservoir::new(policy).sample_batch(0..3u64, &mut rng);
        let s2 = HybridReservoir::new(policy).sample_batch(3..6u64, &mut rng);
        let s3 = HybridReservoir::new(policy).sample_batch(6..9u64, &mut rng);
        let m12 = hr_merge(s1, s2, &mut rng).unwrap();
        let m = hr_merge(m12, s3, &mut rng).unwrap();
        assert_eq!(m.size(), 2);
        *freq.entry(subset_key(&m)).or_insert(0) += 1;
    }
    let subsets = choose(9, 2);
    assert_eq!(freq.len() as u64, subsets);
    let obs: Vec<u64> = freq.values().copied().collect();
    let exp = vec![trials as f64 / subsets as f64; subsets as usize];
    let stat = chi_square_statistic(&obs, &exp);
    let pv = chi_square_p_value(stat, (subsets - 1) as f64);
    assert!(
        pv > 1e-4,
        "chained merge not uniform: chi2={stat:.1} p={pv:.2e}"
    );
}
