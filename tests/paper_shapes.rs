//! Regression tests for the paper's experimental claims at reduced scale —
//! the figure *shapes* as assertions, so refactors cannot silently break
//! what the evaluation established. (Full-scale regeneration lives in the
//! `swh-bench` binaries; see EXPERIMENTS.md.)

use sample_warehouse::sampling::{
    merge_all, q_approx, q_exact, FootprintPolicy, HybridBernoulli, HybridReservoir, Sample,
    SampleKind, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::workloads::{DataDistribution, DataSpec};

fn policy(n_f: u64) -> FootprintPolicy {
    FootprintPolicy::with_value_budget(n_f)
}

/// Fig. 5: the closed-form rate bound stays within 3% of the exact root
/// across the paper's grid.
#[test]
fn fig05_rate_approximation_error_bounded() {
    let n = 100_000u64;
    let mut max_rel = 0.0f64;
    for &n_f in &[100u64, 1_000, 10_000] {
        for &p in &[1e-5, 1e-4, 1e-3, 5e-3] {
            let qa = q_approx(n, p, n_f);
            let qe = q_exact(n, p, n_f);
            max_rel = max_rel.max(((qa - qe) / qe).abs());
        }
    }
    assert!(
        max_rel < 0.03,
        "max relative error {max_rel:.4} exceeds paper's 2.765%"
    );
    // And it is not trivially tiny either — the paper's corner case is real.
    assert!(
        max_rel > 0.005,
        "max relative error {max_rel:.4} suspiciously small"
    );
}

fn merged_sizes(
    hb_p: Option<f64>,
    parts: u64,
    per: u64,
    n_f: u64,
    runs: usize,
    seed: u64,
) -> Vec<u64> {
    let mut rng = seeded_rng(seed);
    (0..runs)
        .map(|r| {
            let spec = DataSpec::new(DataDistribution::Unique, parts * per, r as u64);
            let samples: Vec<Sample<u64>> = spec
                .partitions(parts)
                .into_iter()
                .map(|stream| match hb_p {
                    Some(p) => HybridBernoulli::with_p_bound(policy(n_f), per, p)
                        .sample_batch(stream, &mut rng),
                    None => HybridReservoir::new(policy(n_f)).sample_batch(stream, &mut rng),
                })
                .collect();
            merge_all(samples, hb_p.unwrap_or(1e-3), &mut rng)
                .unwrap()
                .size()
        })
        .collect()
}

/// Fig. 16: HR's merged sample size is pinned at exactly `n_F` for every
/// partition count.
#[test]
fn fig16_hr_sizes_pinned_at_nf() {
    let (per, n_f) = (4_096u64, 1_024u64);
    for parts in [1u64, 4, 16, 64] {
        for size in merged_sizes(None, parts, per, n_f, 2, 42) {
            assert_eq!(size, n_f, "HR size at {parts} partitions");
        }
    }
}

/// Fig. 15: HB's merged sizes are below `n_F`, variable, but within ~10% of
/// HR's, and insensitive to `p`.
#[test]
fn fig15_hb_sizes_smaller_and_p_insensitive() {
    let (per, n_f, parts, runs) = (4_096u64, 1_024u64, 16u64, 6);
    let hb3 = merged_sizes(Some(1e-3), parts, per, n_f, runs, 7);
    let hb5 = merged_sizes(Some(1e-5), parts, per, n_f, runs, 8);
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    let (m3, m5) = (mean(&hb3), mean(&hb5));
    // Below n_F but not by much (paper: worst gap ~9%).
    assert!(m3 < n_f as f64, "HB mean {m3} not below n_F");
    assert!(
        m3 > 0.85 * n_f as f64,
        "HB mean {m3} more than 15% below n_F"
    );
    // Nearly insensitive to p. (At this reduced scale n_F/N = 25%, so the
    // z_p·σ slack is relatively larger than at paper scale where the
    // curves almost coincide; 10% is the loose-scale bound.)
    assert!(
        (m3 - m5).abs() / m3 < 0.10,
        "HB size sensitive to p: {m3} (p=1e-3) vs {m5} (p=1e-5)"
    );
}

/// §4.3 / Figs. 9–11 cost model: merging HB (Bernoulli) samples is cheaper
/// than merging HR (reservoir) samples — count RNG-heavy purge work via
/// wall time at equal inputs.
#[test]
fn hb_merges_cheaper_than_hr() {
    let (per, n_f, parts) = (8_192u64, 2_048u64, 32u64);
    let mut rng = seeded_rng(11);
    let spec = DataSpec::new(DataDistribution::Unique, parts * per, 0);
    let hb: Vec<Sample<u64>> = spec
        .partitions(parts)
        .into_iter()
        .map(|s| HybridBernoulli::new(policy(n_f), per).sample_batch(s, &mut rng))
        .collect();
    let hr: Vec<Sample<u64>> = spec
        .partitions(parts)
        .into_iter()
        .map(|s| HybridReservoir::new(policy(n_f)).sample_batch(s, &mut rng))
        .collect();
    // Average over repetitions to de-noise.
    let reps = 5;
    let time = |samples: &Vec<Sample<u64>>, rng: &mut rand::rngs::SmallRng| {
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let _ = merge_all(samples.clone(), 1e-3, rng).unwrap();
        }
        start.elapsed()
    };
    let t_hb = time(&hb, &mut rng);
    let t_hr = time(&hr, &mut rng);
    assert!(
        t_hb < t_hr,
        "HB merge chain ({t_hb:?}) should be cheaper than HR ({t_hr:?})"
    );
}

/// Footnote 5: Zipfian partitions produce exhaustive samples, and their
/// merge is the exact histogram of the full data set.
#[test]
fn zipf_samples_stay_exhaustive() {
    let mut rng = seeded_rng(13);
    let spec = DataSpec::new(DataDistribution::PAPER_ZIPF, 64_000, 3);
    let samples: Vec<Sample<u64>> = spec
        .partitions(8)
        .into_iter()
        .map(|s| HybridReservoir::new(policy(8_192)).sample_batch(s, &mut rng))
        .collect();
    for s in &samples {
        assert_eq!(
            s.kind(),
            SampleKind::Exhaustive,
            "Zipf partition not exhaustive"
        );
    }
    let merged = merge_all(samples, 1e-3, &mut rng).unwrap();
    assert_eq!(merged.kind(), SampleKind::Exhaustive);
    assert_eq!(merged.size(), 64_000);
}

/// Requirement 3 (§2): the bound holds *during* processing, not only at
/// the end — checked across a mixed workload with duplicates.
#[test]
fn footprint_bound_holds_during_processing() {
    let n_f = 256u64;
    let mut rng = seeded_rng(17);
    let spec = DataSpec::new(DataDistribution::Uniform { max: 10_000 }, 100_000, 5);
    let mut hb = HybridBernoulli::new(policy(n_f), 100_000);
    let mut hr = HybridReservoir::new(policy(n_f));
    for v in spec.stream() {
        hb.observe(v, &mut rng);
        hr.observe(v, &mut rng);
        assert!(hb.current_slots() <= n_f);
        assert!(hr.current_slots() <= n_f);
    }
}
