//! Churn/soak testing: long randomized sequences of warehouse operations
//! (ingest, roll-out, window maintenance, union queries, persistence
//! round-trips) with invariants checked continuously.
//!
//! The default test runs a short soak; `cargo test --test soak -- --ignored`
//! runs the long one.

use rand::Rng;
use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::window::SlidingWindow;
use sample_warehouse::warehouse::{
    DatasetId, DiskStore, PartitionId, PartitionKey, SampleWarehouse,
};

fn churn(cycles: u64, seed: u64) {
    let mut rng = seeded_rng(seed);
    let n_f = 128u64;
    let policy = FootprintPolicy::with_value_budget(n_f);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let dataset = DatasetId(1);
    let mut window = SlidingWindow::new(5);
    let dir = std::env::temp_dir().join(format!("swh-soak-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).expect("store");

    let mut next_seq = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut covered = 0u64;

    #[allow(clippy::explicit_counter_loop)] // next_seq outlives evictions, not a pure counter
    for cycle in 0..cycles {
        // Ingest a new partition of random size and cardinality.
        let size = rng.random_range(50..3_000u64);
        let domain = rng.random_range(5..2_000u64);
        let base = next_seq * 10_000;
        let key = PartitionKey {
            dataset,
            partition: PartitionId::seq(next_seq),
        };
        wh.ingest_partition(key, (0..size).map(|i| base + i % domain), None, &mut rng)
            .expect("ingest");
        let sample = wh.catalog().get(key).expect("present");
        assert!(sample.slots() <= n_f, "cycle {cycle}: footprint violated");
        window.roll_in(next_seq, sample.clone());
        store.save(key, &sample).expect("persist");
        live.push(next_seq);
        covered += size;
        next_seq += 1;

        // Occasionally roll the oldest partition out everywhere.
        if live.len() > 8 {
            let seq = live.remove(0);
            let key = PartitionKey {
                dataset,
                partition: PartitionId::seq(seq),
            };
            let out = wh.roll_out(key).expect("roll out");
            covered -= out.parent_size();
            store.remove(key).expect("store remove");
        }

        // Union query must cover exactly the live partitions.
        let s = wh.query_all(dataset, &mut rng).expect("query");
        assert_eq!(s.parent_size(), covered, "cycle {cycle}: coverage drifted");
        assert!(s.slots() <= n_f);

        // Window sample covers at most the last 5 partitions.
        let w = window.window_sample(1e-3, &mut rng).expect("window");
        assert!(
            w.parent_size() <= covered + 30_000,
            "window larger than plausible"
        );

        // Periodic persistence check: reload one random live partition and
        // compare bit-for-bit.
        if cycle % 7 == 0 {
            let seq = live[rng.random_range(0..live.len())];
            let key = PartitionKey {
                dataset,
                partition: PartitionId::seq(seq),
            };
            let reloaded = store.load::<u64>(key).expect("load");
            assert_eq!(
                reloaded,
                wh.catalog().get(key).expect("live"),
                "cycle {cycle}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_soak() {
    churn(60, 1);
}

#[test]
#[ignore = "long soak; run explicitly with --ignored"]
fn long_soak() {
    churn(2_000, 2);
}
