//! Fluctuating arrival rates (§2): compare temporal partitioning (one
//! partition per fixed time window) against ratio-triggered on-the-fly
//! partitioning on a bursty Poisson stream.
//!
//! With time windows, bursts produce huge partitions whose samples cover a
//! tiny fraction of their data; the ratio-bounded partitioner instead
//! closes partitions faster during bursts so every sample keeps at least
//! the required coverage.
//!
//! ```sh
//! cargo run --release --example bursty_stream
//! ```

use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::ingest::{RatioBoundedPartitioner, TimePartitioner};
use sample_warehouse::workloads::{bursty_profile, ArrivalProcess, DataDistribution, DataSpec};

fn main() {
    let mut rng = seeded_rng(6);
    let policy = FootprintPolicy::with_value_budget(1024);
    let spec = DataSpec::new(DataDistribution::PAPER_UNIFORM, 200_000, 8);
    // Quiet: 1000 events/unit for 8 units; burst: 20_000 events/unit for 1.
    let profile = bursty_profile(1_000.0, 8.0, 20_000.0, 1.0);

    // --- Fixed time windows (1 unit each). --------------------------------
    let mut by_time: TimePartitioner<u64> = TimePartitioner::new(policy, 1.0);
    for a in ArrivalProcess::new(spec, profile.clone(), 1) {
        by_time.observe_at(a.time, a.value, &mut rng);
    }
    let windows = by_time.finish(&mut rng);
    println!("fixed 1-unit time windows ({}):", windows.len());
    let (mut min_ratio, mut max_n) = (f64::INFINITY, 0u64);
    for (seq, s) in windows.iter().take(12) {
        println!(
            "  window {seq:>3}: {:>6} events, sample ratio {:>7.4}",
            s.parent_size(),
            s.sampling_fraction()
        );
        min_ratio = min_ratio.min(s.sampling_fraction());
        max_n = max_n.max(s.parent_size());
    }
    println!("  ... burst windows hold up to {max_n} events; worst coverage {min_ratio:.4}\n");

    // --- Ratio-bounded partitions (coverage >= 1/16). ---------------------
    let mut by_ratio: RatioBoundedPartitioner<u64> =
        RatioBoundedPartitioner::new(policy, 1.0 / 16.0);
    for a in ArrivalProcess::new(spec, profile, 1) {
        by_ratio.observe(a.value, &mut rng);
    }
    let parts = by_ratio.finish(&mut rng);
    println!(
        "ratio-bounded partitions (>= 1/16 coverage): {} partitions",
        parts.len()
    );
    let worst = parts
        .iter()
        .map(|s| s.sampling_fraction())
        .fold(f64::INFINITY, f64::min);
    println!("  every partition: 16384 events, worst coverage {worst:.4}");
    println!("\n(The ratio bound turns bursts into more partitions instead of worse samples.)");
}
