//! Approximate vs. exact: the accuracy a sample warehouse buys for its
//! footprint. Loads one data set into a full-scale store *and* its sample
//! shadow, runs a query batch both ways, and prints the accuracy table for
//! several footprint bounds.
//!
//! ```sh
//! cargo run --release --example shadow_accuracy
//! ```

use sample_warehouse::aqp::query::{Predicate, Query};
use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey};
use sample_warehouse::workloads::{DataDistribution, DataSpec};
use sample_warehouse::ShadowedWarehouse;

fn main() {
    let dataset = DatasetId(1);
    let spec = DataSpec::new(DataDistribution::PAPER_UNIFORM, 800_000, 5);
    let queries = vec![
        Query::count(Predicate::ModEq {
            modulus: 10,
            remainder: 0,
        }),
        Query::count(Predicate::Between {
            lo: 900_000,
            hi: 1_000_000,
        }),
        Query::sum(Predicate::True),
        Query::avg(Predicate::Between { lo: 1, hi: 500_000 }),
        Query::quantile(0.95, Predicate::True),
    ];

    println!(
        "{:<34} {:>10} | {:>8} {:>8} {:>8}",
        "query", "exact", "nF=512", "nF=4096", "nF=16384"
    );
    println!("{}", "-".repeat(78));

    // Build one shadowed warehouse per footprint bound.
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
    let mut exact: Vec<f64> = Vec::new();
    for (i, &n_f) in [512u64, 4096, 16_384].iter().enumerate() {
        let root = std::env::temp_dir().join(format!("swh-shadow-example-{n_f}"));
        let _ = std::fs::remove_dir_all(&root);
        let mut wh = ShadowedWarehouse::open(
            &root,
            FootprintPolicy::with_value_budget(n_f),
            Algorithm::HybridReservoir,
            2026,
        )
        .expect("open");
        for (p, part) in spec.partitions(8).into_iter().enumerate() {
            wh.ingest_partition(
                PartitionKey {
                    dataset,
                    partition: PartitionId::seq(p as u64),
                },
                part.map(|v| v as i64),
            )
            .expect("ingest");
        }
        let report = wh.accuracy_report(dataset, &queries).expect("report");
        for (qi, row) in report.iter().enumerate() {
            if i == 0 {
                exact.push(row.exact);
            }
            results[qi].push(row.relative_error * 100.0);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    for (qi, q) in queries.iter().enumerate() {
        println!(
            "{:<34} {:>10.3e} | {:>7.2}% {:>7.2}% {:>7.2}%",
            format!("{:?}({})", q.aggregate, q.predicate),
            exact[qi],
            results[qi][0],
            results[qi][1],
            results[qi][2],
        );
    }
    println!("\n(relative error of the approximate answer; larger footprint -> tighter)");
}
