//! Metadata discovery from warehouse samples — the paper's second
//! motivating application (§1): profile columns without touching the
//! full-scale warehouse.
//!
//! ```sh
//! cargo run --release --example metadata_discovery
//! ```

use sample_warehouse::aqp::profile::profile;
use sample_warehouse::aqp::quantiles::estimate_median;
use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey, SampleWarehouse};
use sample_warehouse::workloads::{DataDistribution, DataSpec};

fn main() {
    let mut rng = seeded_rng(17);
    let policy = FootprintPolicy::with_value_budget(4096);
    let wh: SampleWarehouse<u64> = SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);

    // Three "columns" with very different shapes, each ingested as four
    // partitions.
    let columns = [
        (DatasetId(1), "order_id (unique)", DataDistribution::Unique),
        (
            DatasetId(2),
            "customer_zip (uniform)",
            DataDistribution::PAPER_UNIFORM,
        ),
        (
            DatasetId(3),
            "product_code (zipf)",
            DataDistribution::PAPER_ZIPF,
        ),
    ];
    for (id, _, dist) in columns {
        let spec = DataSpec::new(dist, 400_000, id.0);
        for (i, part) in spec.partitions(4).into_iter().enumerate() {
            wh.ingest_partition(
                PartitionKey {
                    dataset: id,
                    partition: PartitionId::seq(i as u64),
                },
                part,
                None,
                &mut rng,
            )
            .expect("ingest");
        }
    }

    for (id, name, _) in columns {
        let sample = wh.query_all(id, &mut rng).expect("union sample");
        let p = profile(&sample, 3);
        println!("column {name}:");
        println!("  rows                : {}", p.rows);
        println!(
            "  sample              : {} values ({}, {:.3}% of rows)",
            p.sample_size,
            if p.exact { "exact" } else { "approximate" },
            100.0 * p.sampling_fraction
        );
        println!(
            "  distinct values     : >= {} observed, ~{:.0} estimated (Chao84)",
            p.distinct_lower_bound, p.distinct_estimate
        );
        println!(
            "  value range         : {:?} ..= {:?}",
            p.min.unwrap(),
            p.max.unwrap()
        );
        if let Some(m) = estimate_median(&sample, 0.95) {
            println!(
                "  median              : ~{} (95% CI [{}, {}])",
                m.value, m.lo, m.hi
            );
        }
        println!("  most common values  :");
        for (v, est) in &p.most_common {
            let (lo, hi) = est.confidence_interval(0.95);
            println!(
                "    {v:>8} ~ {:>9.0} occurrences (95% CI [{lo:.0}, {hi:.0}])",
                est.value
            );
        }
        println!();
    }
}
