//! Quickstart: sample two partitions of a data set with bounded footprint,
//! merge them into one uniform sample, and answer an approximate query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sample_warehouse::aqp::estimators::{estimate_avg, estimate_count};
use sample_warehouse::sampling::{merge, FootprintPolicy, HybridReservoir, Sample, Sampler};
use sample_warehouse::variates::seeded_rng;

fn main() {
    let mut rng = seeded_rng(2026);

    // A footprint bound of 4096 data-element values (~32 KiB for u64):
    // no sample — during or after collection — will ever exceed it.
    let policy = FootprintPolicy::with_value_budget(4096);

    // Two disjoint partitions of one data set, e.g. two days of events.
    // Algorithm HR needs no a priori knowledge of the partition sizes.
    let monday: Sample<u64> = HybridReservoir::new(policy).sample_batch(0..600_000u64, &mut rng);
    let tuesday: Sample<u64> =
        HybridReservoir::new(policy).sample_batch(600_000..1_000_000u64, &mut rng);

    println!(
        "monday : sampled {:>5} of {:>7} values ({:?})",
        monday.size(),
        monday.parent_size(),
        monday.kind()
    );
    println!(
        "tuesday: sampled {:>5} of {:>7} values ({:?})",
        tuesday.size(),
        tuesday.parent_size(),
        tuesday.kind()
    );

    // Merge into a single uniform sample of the union of both days.
    let both = merge(monday, tuesday, 1e-3, &mut rng).expect("mergeable provenance");
    println!(
        "merged : {} values representing {} (footprint {} bytes <= bound {} bytes)",
        both.size(),
        both.parent_size(),
        both.footprint_bytes(),
        both.policy().f_bytes()
    );

    // Approximate analytics with confidence intervals.
    let count = estimate_count(&both, |v| v % 10 == 0);
    let (lo, hi) = count.confidence_interval(0.95);
    println!(
        "COUNT(v % 10 == 0) ~ {:.0}   (95% CI [{:.0}, {:.0}]; truth = 100000)",
        count.value, lo, hi
    );

    let avg = estimate_avg(&both, |_| true);
    let (lo, hi) = avg.confidence_interval(0.95);
    println!(
        "AVG(v)             ~ {:.0}   (95% CI [{:.0}, {:.0}]; truth = 499999.5)",
        avg.value, lo, hi
    );
}
