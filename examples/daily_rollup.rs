//! The paper's warehousing scenario (§2): daily partitions are sampled as
//! they arrive and rolled into the sample warehouse; weekly and monthly
//! samples are produced on demand by merging; a 7-day sliding window
//! approximates a moving-window stream sample as old days roll out.
//!
//! ```sh
//! cargo run --release --example daily_rollup
//! ```

use sample_warehouse::aqp::estimators::estimate_count;
use sample_warehouse::sampling::FootprintPolicy;
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::window::SlidingWindow;
use sample_warehouse::warehouse::{DatasetId, PartitionId, PartitionKey, SampleWarehouse};
use sample_warehouse::workloads::{DataDistribution, DataSpec};

fn main() {
    let mut rng = seeded_rng(7);
    let policy = FootprintPolicy::with_value_budget(2048);
    let warehouse: SampleWarehouse<u64> =
        SampleWarehouse::new(policy, Algorithm::HybridReservoir, 1e-3);
    let orders = DatasetId(1);

    // 30 days of "order amounts": uniform integers in 1..=1_000_000, with
    // per-day volume that fluctuates.
    let mut window = SlidingWindow::new(7);
    let mut total_rows = 0u64;
    for day in 0..30u64 {
        let volume = 40_000 + 17_000 * (day % 3); // fluctuating arrival rate
        let spec = DataSpec::new(DataDistribution::PAPER_UNIFORM, volume, 100 + day);
        let key = PartitionKey {
            dataset: orders,
            partition: PartitionId::seq(day),
        };
        warehouse
            .ingest_partition(key, spec.stream(), None, &mut rng)
            .expect("roll-in");
        total_rows += volume;

        // Maintain the 7-day moving window alongside the full catalog.
        let daily = warehouse.catalog().get(key).expect("just ingested");
        window.roll_in(day, daily);
    }
    println!("ingested 30 daily partitions, {total_rows} rows total");

    // Weekly sample: merge days 0..7 on demand.
    let week1 = warehouse
        .query_union(orders, |p| p.seq < 7, &mut rng)
        .expect("week query");
    println!(
        "week 1  : uniform sample of {} rows -> {} values",
        week1.parent_size(),
        week1.size()
    );

    // Monthly sample: all 30 days.
    let month = warehouse.query_all(orders, &mut rng).expect("month query");
    let high = estimate_count(&month, |v| *v > 900_000);
    let (lo, hi) = high.confidence_interval(0.95);
    println!(
        "month   : sample of {} rows -> {} values; COUNT(amount > 900k) ~ {:.0} \
         (95% CI [{:.0}, {:.0}]; truth ~ {:.0})",
        month.parent_size(),
        month.size(),
        high.value,
        lo,
        hi,
        total_rows as f64 * 0.1
    );

    // Moving window: covers only the 7 most recent days.
    let moving = window.window_sample(1e-3, &mut rng).expect("window sample");
    println!(
        "window  : days {:?}, {} rows -> {} values",
        window.seqs(),
        moving.parent_size(),
        moving.size()
    );

    // Roll out the oldest week from the warehouse proper, as the full-scale
    // warehouse drops those partitions.
    for day in 0..7u64 {
        warehouse
            .roll_out(PartitionKey {
                dataset: orders,
                partition: PartitionId::seq(day),
            })
            .expect("roll-out");
    }
    let trimmed = warehouse
        .query_all(orders, &mut rng)
        .expect("post roll-out");
    println!(
        "rolled out week 1: remaining coverage {} rows -> {} values",
        trimmed.parent_size(),
        trimmed.size()
    );
}
