//! Stream scenarios from §2:
//!
//! 1. an "overwhelming" stream is split round-robin over several samplers
//!    (as if over several machines) and the per-split samples are merged on
//!    demand;
//! 2. a stream with a fluctuating arrival rate is partitioned *on the fly*
//!    so each partition's sample stays above a minimum sampling ratio.
//!
//! ```sh
//! cargo run --release --example stream_split
//! ```

use sample_warehouse::sampling::{merge_all, FootprintPolicy, Sample};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::ingest::{
    RatioBoundedPartitioner, SamplerConfig, SplitPolicy, StreamRouter,
};
use sample_warehouse::workloads::{DataDistribution, DataSpec};

fn main() {
    let mut rng = seeded_rng(11);
    let policy = FootprintPolicy::with_value_budget(1024);

    // --- Scenario 1: split one stream over four "machines". -------------
    let spec = DataSpec::new(DataDistribution::PAPER_UNIFORM, 400_000, 3);
    let mut router: StreamRouter<u64> = StreamRouter::new(
        4,
        SamplerConfig::HybridReservoir,
        policy,
        SplitPolicy::RoundRobin,
    );
    for v in spec.stream() {
        router.observe(v, &mut rng);
    }
    let split_samples: Vec<Sample<u64>> = router.finalize(&mut rng);
    println!("stream of 400000 values split over 4 samplers:");
    for (i, s) in split_samples.iter().enumerate() {
        println!("  split {i}: {} of {} values", s.size(), s.parent_size());
    }
    let merged = merge_all(split_samples, 1e-3, &mut rng).expect("merge splits");
    println!(
        "merged on demand: {} values, uniform over all {} (kind {:?})\n",
        merged.size(),
        merged.parent_size(),
        merged.kind()
    );

    // --- Scenario 2: ratio-triggered on-the-fly partitioning. -----------
    // Keep every partition's sample at >= 1/32 of its parent: the partition
    // closes as soon as the HR sample (fixed at n_F values) falls to that
    // fraction, and a new partition begins.
    let min_ratio = 1.0 / 32.0;
    let mut partitioner: RatioBoundedPartitioner<u64> =
        RatioBoundedPartitioner::new(policy, min_ratio);
    // Bursty stream: volume varies by phase, total 300_000 values.
    let bursty = DataSpec::new(DataDistribution::PAPER_UNIFORM, 300_000, 9);
    for v in bursty.stream() {
        partitioner.observe(v, &mut rng);
    }
    let parts = partitioner.finish(&mut rng);
    println!(
        "bursty stream partitioned on the fly into {} partitions (ratio bound {:.3}):",
        parts.len(),
        min_ratio
    );
    for (i, s) in parts.iter().take(5).enumerate() {
        println!(
            "  partition {i}: {} of {} values (ratio {:.4})",
            s.size(),
            s.parent_size(),
            s.sampling_fraction()
        );
    }
    if parts.len() > 5 {
        println!("  ... and {} more", parts.len() - 5);
    }
    let all = merge_all(parts, 1e-3, &mut rng).expect("merge on-the-fly partitions");
    println!(
        "merged across all partitions: {} values over {} rows",
        all.size(),
        all.parent_size()
    );
}
