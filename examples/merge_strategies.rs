//! Tour of the merge operators: serial fold (the paper's setup), balanced
//! tree, alias-cached symmetric tree (§4.2), direct multiway merge
//! (Theorem 1 generalized), and the cost-aware planner — all producing
//! uniform samples of the same union.
//!
//! ```sh
//! cargo run --release --example merge_strategies
//! ```

use sample_warehouse::sampling::{
    hr_merge_multiway, hr_merge_tree_cached, merge_all, merge_planned, merge_tree, FootprintPolicy,
    HybridReservoir, HypergeometricCache, Sample, Sampler,
};
use sample_warehouse::variates::seeded_rng;
use std::time::Instant;

fn partitions(parts: u64, per: u64, n_f: u64, rng: &mut rand::rngs::SmallRng) -> Vec<Sample<u64>> {
    let policy = FootprintPolicy::with_value_budget(n_f);
    (0..parts)
        .map(|p| HybridReservoir::new(policy).sample_batch(p * per..(p + 1) * per, rng))
        .collect()
}

fn main() {
    let mut rng = seeded_rng(4);
    let (parts, per, n_f) = (64u64, 32_768u64, 4_096u64);
    println!("{} partitions x {} elements, n_F = {}\n", parts, per, n_f);
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "strategy", "time", "sample size", "covers"
    );

    let mut cache = HypergeometricCache::new();
    type Runner<'a> =
        Box<dyn FnMut(Vec<Sample<u64>>, &mut rand::rngs::SmallRng) -> Sample<u64> + 'a>;
    let strategies: Vec<(&str, Runner)> = vec![
        (
            "serial fold (paper)",
            Box::new(|s, rng| merge_all(s, 1e-3, rng).unwrap()),
        ),
        (
            "balanced tree",
            Box::new(|s, rng| merge_tree(s, 1e-3, rng).unwrap()),
        ),
        (
            "cached symmetric tree",
            Box::new(|s, rng| hr_merge_tree_cached(s, &mut cache, rng).unwrap()),
        ),
        (
            "direct multiway",
            Box::new(|s, rng| hr_merge_multiway(s, rng).unwrap()),
        ),
        (
            "cost-aware plan",
            Box::new(|s, rng| merge_planned(s, 1e-3, rng).unwrap()),
        ),
    ];

    for (name, mut run) in strategies {
        let samples = partitions(parts, per, n_f, &mut rng);
        let start = Instant::now();
        let merged = run(samples, &mut rng);
        let t = start.elapsed();
        println!(
            "{name:<28} {:>10.2?} {:>12} {:>10}",
            t,
            merged.size(),
            merged.parent_size()
        );
        assert_eq!(merged.parent_size(), parts * per);
    }
    println!(
        "\nAll strategies yield a statistically identical uniform sample of the union;\n\
         they differ only in cost (and the alias cache now holds {} table(s)).",
        cache.len()
    );
}
