//! Parallel bulk load (§2): a large initial batch is divided into
//! partitions, sampled with Algorithm HB on worker threads, merged into a
//! single uniform sample, persisted, and reloaded.
//!
//! ```sh
//! cargo run --release --example parallel_ingest
//! ```

use sample_warehouse::sampling::{FootprintPolicy, SampleKind};
use sample_warehouse::variates::seeded_rng;
use sample_warehouse::warehouse::warehouse::Algorithm;
use sample_warehouse::warehouse::{DatasetId, DiskStore, SampleWarehouse};
use sample_warehouse::workloads::{DataDistribution, DataSpec};
use std::time::Instant;

fn main() {
    let mut rng = seeded_rng(99);
    let policy = FootprintPolicy::with_value_budget(8192);
    let warehouse: SampleWarehouse<u64> =
        SampleWarehouse::new(policy, Algorithm::HybridBernoulli, 1e-3);
    let dataset = DatasetId(42);

    // Bulk batch: 2^23 unique values divided into 64 partitions.
    let population = 1u64 << 23;
    let partitions = 64u64;
    let spec = DataSpec::new(DataDistribution::Unique, population, 5);
    let per_partition = population / partitions;

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let start = Instant::now();
    warehouse
        .ingest_partitions_parallel(
            dataset,
            spec.partitions(partitions),
            Some(per_partition), // Algorithm HB knows each partition's size
            threads,
            1234,
            0,
        )
        .expect("parallel bulk load");
    let load_time = start.elapsed();
    println!(
        "bulk-loaded {population} values as {partitions} partitions on {threads} thread(s) \
         in {load_time:.2?} ({:.1} M values/s)",
        population as f64 / load_time.as_secs_f64() / 1e6
    );

    // Merge all partition samples into one uniform sample of the batch.
    let start = Instant::now();
    let sample = warehouse.query_all(dataset, &mut rng).expect("merge");
    println!(
        "merged {partitions} partition samples in {:.2?} -> {} values, kind {:?}",
        start.elapsed(),
        sample.size(),
        sample.kind()
    );
    assert!(sample.size() <= 8192);
    assert!(matches!(
        sample.kind(),
        SampleKind::Bernoulli { .. } | SampleKind::Reservoir
    ));

    // Persist the sample warehouse and reload it into a fresh instance.
    let dir = std::env::temp_dir().join("swh-parallel-ingest-example");
    let _ = std::fs::remove_dir_all(&dir);
    let store = DiskStore::open(&dir).expect("open store");
    let written = warehouse.persist_all(&store).expect("persist");
    let reloaded: SampleWarehouse<u64> =
        SampleWarehouse::new(policy, Algorithm::HybridBernoulli, 1e-3);
    let read = reloaded.load_dataset(&store, dataset).expect("reload");
    println!("persisted {written} partition samples, reloaded {read}");
    let again = reloaded.query_all(dataset, &mut rng).expect("reload query");
    println!(
        "reloaded warehouse answers: {} values over {} rows",
        again.size(),
        again.parent_size()
    );
    assert_eq!(again.parent_size(), population);
    std::fs::remove_dir_all(&dir).ok();
}
