#![warn(missing_docs)]

//! # sample-warehouse
//!
//! A full reproduction of *Techniques for Warehousing of Sample Data*
//! (Paul G. Brown & Peter J. Haas, ICDE 2006): bounded-footprint, compact,
//! statistically **uniform** random sampling of data-set partitions, with
//! merge operators that produce a uniform sample of any union of partitions.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`variates`] (`swh-rand`) — binomial, hypergeometric, alias-method,
//!   normal-quantile, and skip-distance generators.
//! * [`sampling`] (`swh-core`) — the paper's Algorithms HB and HR, the merge
//!   functions HBMerge/HRMerge, and the reference schemes (Bernoulli,
//!   reservoir, concise, stratified Bernoulli).
//! * [`warehouse`] (`swh-warehouse`) — catalog, partitioners, parallel
//!   ingestion, roll-in/roll-out, and union queries.
//! * [`aqp`] (`swh-aqp`) — approximate-query estimators over samples.
//! * [`workloads`] (`swh-workloads`) — the paper's §5 data generators and
//!   Poisson arrival simulation.
//! * [`shadow`] — [`ShadowedWarehouse`]: a full-scale store plus its sample
//!   shadow, with approximate-vs-exact accuracy reporting.
//!
//! A command-line front end ships as the `swh` binary (`swh-cli` crate).
//!
//! ## Quick start
//!
//! ```
//! use sample_warehouse::sampling::{FootprintPolicy, HybridReservoir, Sampler};
//! use sample_warehouse::variates::seeded_rng;
//!
//! let mut rng = seeded_rng(42);
//! // Footprint bound of 128 values; sample one million integers.
//! let policy = FootprintPolicy::with_value_budget(128);
//! let mut hr = HybridReservoir::new(policy);
//! for v in 0..1_000_000u64 {
//!     hr.observe(v, &mut rng);
//! }
//! let sample = hr.finalize(&mut rng);
//! assert!(sample.size() <= 128);
//! ```

pub mod shadow;

pub use shadow::{AccuracyRow, ShadowError, ShadowedWarehouse};
pub use swh_aqp as aqp;
pub use swh_core as sampling;
pub use swh_rand as variates;
pub use swh_warehouse as warehouse;
pub use swh_workloads as workloads;
