//! The complete Fig. 1 architecture in one object: a full-scale warehouse
//! of partition data files, *shadowed* by a sample warehouse whose bounded
//! samples answer queries approximately — with the full scan available to
//! measure exactly what the approximation trades away.

use std::path::Path;
use swh_aqp::estimators::Estimate;
use swh_aqp::query::Query;
use swh_core::footprint::FootprintPolicy;
use swh_core::sample::Sample;
use swh_rand::seeded_rng;
use swh_warehouse::fullstore::FullStore;
use swh_warehouse::ids::{DatasetId, PartitionKey};
use swh_warehouse::store::StoreError;
use swh_warehouse::warehouse::{Algorithm, SampleWarehouse, WarehouseError};

/// Errors from shadowed-warehouse operations.
#[derive(Debug)]
pub enum ShadowError {
    /// The full-scale side failed.
    Full(StoreError),
    /// The sample side failed.
    Sample(WarehouseError),
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::Full(e) => write!(f, "full-scale store: {e}"),
            ShadowError::Sample(e) => write!(f, "sample warehouse: {e}"),
        }
    }
}

impl std::error::Error for ShadowError {}

impl From<StoreError> for ShadowError {
    fn from(e: StoreError) -> Self {
        ShadowError::Full(e)
    }
}

impl From<WarehouseError> for ShadowError {
    fn from(e: WarehouseError) -> Self {
        ShadowError::Sample(e)
    }
}

/// One approximate-vs-exact comparison row.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// The query that was run.
    pub query: Query,
    /// Approximate answer with its interval.
    pub estimate: Estimate,
    /// Exact answer from the full scan.
    pub exact: f64,
    /// `|estimate − exact| / |exact|` (0 when both are 0; infinite when
    /// only the exact answer is 0).
    pub relative_error: f64,
    /// Whether the exact answer lies in the 95% confidence interval.
    pub covered_95: bool,
}

/// A full-scale warehouse plus its sample shadow.
#[derive(Debug)]
pub struct ShadowedWarehouse {
    full: FullStore,
    samples: SampleWarehouse<i64>,
    seed: u64,
}

impl ShadowedWarehouse {
    /// Open (creating if needed) both sides under `root`: data files in
    /// `root/full`, and an in-memory sample catalog built with the given
    /// policy and algorithm.
    pub fn open(
        root: impl AsRef<Path>,
        policy: FootprintPolicy,
        algorithm: Algorithm,
        seed: u64,
    ) -> Result<Self, ShadowError> {
        let full = FullStore::open(root.as_ref().join("full"))?;
        Ok(Self {
            full,
            samples: SampleWarehouse::new(policy, algorithm, 1e-3),
            seed,
        })
    }

    /// The full-scale side.
    pub fn full(&self) -> &FullStore {
        &self.full
    }

    /// The sample side.
    pub fn samples(&self) -> &SampleWarehouse<i64> {
        &self.samples
    }

    /// Ingest one partition: values are written to the full-scale store
    /// **and** sampled into the shadow in the same pass (the values are
    /// buffered once).
    pub fn ingest_partition<I: IntoIterator<Item = i64>>(
        &mut self,
        key: PartitionKey,
        values: I,
    ) -> Result<u64, ShadowError> {
        let values: Vec<i64> = values.into_iter().collect();
        let n = self.full.write_partition(key, values.iter().copied())?;
        self.seed = self.seed.wrapping_add(0x9E37_79B9);
        let mut rng = seeded_rng(self.seed);
        self.samples
            .ingest_partition(key, values, Some(n), &mut rng)?;
        Ok(n)
    }

    /// Roll a partition out of both sides.
    pub fn roll_out(&mut self, key: PartitionKey) -> Result<(), ShadowError> {
        self.full.remove(key)?;
        self.samples.roll_out(key)?;
        Ok(())
    }

    /// Uniform sample of the whole dataset from the shadow.
    pub fn dataset_sample(&mut self, dataset: DatasetId) -> Result<Sample<i64>, ShadowError> {
        self.seed = self.seed.wrapping_add(1);
        let mut rng = seeded_rng(self.seed);
        Ok(self.samples.query_all(dataset, &mut rng)?)
    }

    /// Answer a query approximately from the shadow.
    pub fn answer_approx(
        &mut self,
        dataset: DatasetId,
        query: &Query,
    ) -> Result<Estimate, ShadowError> {
        let sample = self.dataset_sample(dataset)?;
        Ok(query.estimate(&sample))
    }

    /// Answer a query exactly by scanning the full-scale store.
    pub fn answer_exact(&self, dataset: DatasetId, query: &Query) -> Result<f64, ShadowError> {
        // Materialize with error propagation (a torn partition must fail
        // the query, not be silently dropped mid-scan).
        let values: Result<Vec<i64>, _> = self.full.scan_dataset::<i64>(dataset)?.collect();
        Ok(query.exact(values?))
    }

    /// Run a batch of queries both ways and report accuracy.
    pub fn accuracy_report(
        &mut self,
        dataset: DatasetId,
        queries: &[Query],
    ) -> Result<Vec<AccuracyRow>, ShadowError> {
        let sample = self.dataset_sample(dataset)?;
        let mut rows = Vec::with_capacity(queries.len());
        for query in queries {
            let estimate = query.estimate(&sample);
            let exact = self.answer_exact(dataset, query)?;
            let relative_error = if exact == 0.0 {
                if estimate.value == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (estimate.value - exact).abs() / exact.abs()
            };
            let (lo, hi) = estimate.confidence_interval(0.95);
            rows.push(AccuracyRow {
                query: query.clone(),
                estimate,
                exact,
                relative_error,
                covered_95: (lo..=hi).contains(&exact),
            });
        }
        Ok(rows)
    }
}
